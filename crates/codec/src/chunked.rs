//! Chunked canonical Huffman with a gap array — the GPU-parallel layout.
//!
//! A single Huffman bit stream is inherently serial to decode. Real cuSZ
//! (and nvCOMP) therefore encode fixed-size *chunks* of symbols and store a
//! per-chunk bit offset ("gap array"), so every chunk decodes independently
//! on its own thread block. This module reproduces that layout: one shared
//! codebook, per-chunk byte-aligned payloads, and an offset table that the
//! decoder (and tests) can fan out over.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::huffman::{histogram_into, CodebookScratch, HuffmanDecoder, HuffmanEncoder};
use crate::varint::{read_uvarint, write_uvarint};
use gpu_model::exec::par_chunks_mut;
use std::cell::RefCell;
use std::sync::Mutex;

/// Symbols per chunk (cuSZ uses a few thousand per thread block).
pub const DEFAULT_CHUNK: usize = 4096;

/// Symbols per parallel histogram block.
const HIST_BLOCK: usize = 1 << 15;

/// Reused buffers behind [`encode_chunked_into`]'s warm path: the partial
/// histograms, merged frequency table, codebook (encoder + scratch) and
/// per-chunk payload buffers that a cold encode would allocate fresh. One
/// pool lives per calling thread; a warm encode of a same-shaped buffer
/// performs no heap allocation (gated by `alloc_cusz_table.rs` in the
/// bench crate). Retained memory is modest: one alphabet-sized table per
/// histogram block plus the compressed payload bytes of the largest buffer
/// encoded on the thread.
#[derive(Debug, Default)]
struct EncodePool {
    scratch: CodebookScratch,
    enc: HuffmanEncoder,
    freqs: Vec<u64>,
    partials: Vec<Vec<u64>>,
    payloads: Vec<Vec<u8>>,
}

thread_local! {
    static ENCODE_POOL: RefCell<EncodePool> = RefCell::new(EncodePool::default());
}

/// Encodes `symbols` over `alphabet_size` into a self-contained chunked
/// stream: codebook, gap array, then byte-aligned per-chunk payloads.
///
/// Both passes run block-parallel: partial histograms merge by addition
/// (order-independent), and each chunk encodes into a private writer — the
/// emitted stream is byte-for-byte the serial one for any worker count.
pub fn encode_chunked(symbols: &[u32], alphabet_size: usize, chunk: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(symbols.len() / 2 + 64);
    encode_chunked_into(symbols, alphabet_size, chunk, &mut out);
    out
}

/// [`encode_chunked`] into a caller-provided buffer, which is cleared first
/// (reusing its capacity). Bytes produced are identical to the allocating
/// variant. Scratch state (histograms, codebook, per-chunk writers) comes
/// from a thread-local pool, so repeated calls on one thread settle into a
/// zero-allocation steady state.
pub fn encode_chunked_into(symbols: &[u32], alphabet_size: usize, chunk: usize, out: &mut Vec<u8>) {
    assert!(chunk > 0, "chunk size must be positive");
    ENCODE_POOL.with(|pool| match pool.try_borrow_mut() {
        Ok(mut pool) => encode_chunked_with_pool(symbols, alphabet_size, chunk, out, &mut pool),
        // Reentrant call on the same thread (an encoder invoked from inside
        // an encode callback): fall back to a throwaway pool.
        Err(_) => encode_chunked_with_pool(
            symbols,
            alphabet_size,
            chunk,
            out,
            &mut EncodePool::default(),
        ),
    });
}

fn encode_chunked_with_pool(
    symbols: &[u32],
    alphabet_size: usize,
    chunk: usize,
    out: &mut Vec<u8>,
    pool: &mut EncodePool,
) {
    // Partial histograms, one per HIST_BLOCK, into pooled tables
    // (histogram_into zeroes each). Same block decomposition and in-order
    // merge as ever, so the frequency table is bit-identical.
    let n_hist = symbols.len().div_ceil(HIST_BLOCK);
    if pool.partials.len() < n_hist {
        pool.partials.resize_with(n_hist, Vec::new);
    }
    let partials = &mut pool.partials[..n_hist];
    for p in partials.iter_mut() {
        p.resize(alphabet_size, 0);
    }
    par_chunks_mut(partials, 1, |b, slot| {
        let lo = b * HIST_BLOCK;
        let hi = (lo + HIST_BLOCK).min(symbols.len());
        histogram_into(&symbols[lo..hi], &mut slot[0]);
    });
    pool.freqs.clear();
    pool.freqs.resize(alphabet_size, 0);
    for p in partials.iter() {
        for (f, x) in pool.freqs.iter_mut().zip(p) {
            *f += x;
        }
    }
    pool.enc.rebuild_from_freqs(&pool.freqs, &mut pool.scratch);

    out.clear();
    write_uvarint(out, symbols.len() as u64);
    write_uvarint(out, chunk as u64);
    pool.enc.write_table(out);

    // Encode each chunk byte-aligned into its pooled buffer; record its
    // compressed length.
    let n_chunks = symbols.len().div_ceil(chunk);
    if pool.payloads.len() < n_chunks {
        pool.payloads.resize_with(n_chunks, Vec::new);
    }
    let payloads = &mut pool.payloads[..n_chunks];
    let enc = &pool.enc;
    par_chunks_mut(payloads, 1, |k, slot| {
        let lo = k * chunk;
        let hi = (lo + chunk).min(symbols.len());
        let mut w = BitWriter::from_vec(std::mem::take(&mut slot[0]));
        enc.encode_all(&mut w, &symbols[lo..hi]);
        slot[0] = w.finish();
    });
    // Gap array: cumulative byte offsets (varint deltas = chunk lengths).
    write_uvarint(out, n_chunks as u64);
    for p in payloads.iter() {
        write_uvarint(out, p.len() as u64);
    }
    for p in payloads.iter() {
        out.extend_from_slice(p);
    }
}

/// Decodes a stream produced by [`encode_chunked`].
///
/// The gap array makes every chunk independently decodable, so chunks fan
/// out over the executor and the results concatenate in chunk order.
pub fn decode_chunked(data: &[u8]) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::new();
    decode_chunked_into(data, &mut out)?;
    Ok(out)
}

/// [`decode_chunked`] into a caller-provided buffer, which is cleared first
/// (reusing its capacity). On error the buffer contents are unspecified but
/// valid.
pub fn decode_chunked_into(data: &[u8], out: &mut Vec<u32>) -> Result<(), CodecError> {
    let mut pos = 0usize;
    let (n, chunk, dec, lens, payload_start) = read_header(data, &mut pos)?;
    out.clear();
    out.resize(n, 0);
    decode_chunks(data, chunk, &dec, &lens, payload_start, out)
}

/// [`decode_chunked`] into an exactly-sized slice — the zero-allocation
/// variant the compressors' arena-backed paths use. Errors with
/// `Corrupt("symbol count mismatch")` when the stream's declared element
/// count differs from `out.len()`.
pub fn decode_chunked_into_slice(data: &[u8], out: &mut [u32]) -> Result<(), CodecError> {
    let mut pos = 0usize;
    let (n, chunk, dec, lens, payload_start) = read_header(data, &mut pos)?;
    if n != out.len() {
        return Err(CodecError::Corrupt("symbol count mismatch"));
    }
    decode_chunks(data, chunk, &dec, &lens, payload_start, out)
}

/// Fans the per-chunk payloads out over the executor, each decoding
/// straight into its disjoint region of `out` — no per-chunk result
/// vectors. `out.chunks_mut(chunk)` aligns 1:1 with the gap array because
/// `read_header` enforces `lens.len() == n.div_ceil(chunk)`.
fn decode_chunks(
    data: &[u8],
    chunk: usize,
    dec: &HuffmanDecoder,
    lens: &[usize],
    payload_start: usize,
    out: &mut [u32],
) -> Result<(), CodecError> {
    // (byte offset, byte length) per chunk, from the gap array.
    let mut meta = Vec::with_capacity(lens.len());
    let mut offset = payload_start;
    for &len in lens {
        meta.push((offset, len));
        offset += len;
    }
    // Record the lowest-indexed failure so the surfaced error does not
    // depend on worker scheduling.
    let first_err: Mutex<Option<(usize, CodecError)>> = Mutex::new(None);
    par_chunks_mut(out, chunk, |k, dst| {
        let (offset, len) = meta[k];
        if let Err(e) = decode_one_chunk_into(data, offset, len, dec, dst) {
            let mut slot = first_err.lock().unwrap_or_else(|p| p.into_inner());
            if slot.as_ref().is_none_or(|(i, _)| k < *i) {
                *slot = Some((k, e));
            }
        }
    });
    match first_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// Decodes only chunk `k` of the stream — the random-access path the gap
/// array exists for.
pub fn decode_chunk_at(data: &[u8], k: usize) -> Result<Vec<u32>, CodecError> {
    let mut pos = 0usize;
    let (n, chunk, dec, lens, payload_start) = read_header(data, &mut pos)?;
    if k >= lens.len() {
        return Err(CodecError::Corrupt("chunk index out of range"));
    }
    let offset = payload_start + lens[..k].iter().sum::<usize>();
    let want = chunk.min(n - k * chunk);
    decode_one_chunk(data, offset, lens[k], &dec, want)
}

type Header = (usize, usize, HuffmanDecoder, Vec<usize>, usize);

/// Pre-allocation guard: the most symbols one stream byte can legitimately
/// expand into. Every chunk costs at least one gap-array byte and holds at
/// most `2^24` symbols, so a declared count beyond `remaining × 2^24` (plus
/// a small floor for degenerate tiny streams) is forged — reject it before
/// any `with_capacity`/`reserve` sees it.
const MAX_SYMBOLS_PER_BYTE: usize = 1 << 24;
const GUARD_FLOOR: usize = 1 << 16;

fn read_header(data: &[u8], pos: &mut usize) -> Result<Header, CodecError> {
    let n = read_uvarint(data, pos)? as usize;
    if n > 1 << 40 {
        return Err(CodecError::Corrupt("absurd element count"));
    }
    let remaining = data.len() - *pos;
    if n > GUARD_FLOOR + remaining.saturating_mul(MAX_SYMBOLS_PER_BYTE) {
        return Err(CodecError::Corrupt(
            "declared length exceeds remaining input",
        ));
    }
    let chunk = read_uvarint(data, pos)? as usize;
    if chunk == 0 || chunk > 1 << 24 {
        return Err(CodecError::Corrupt("bad chunk size"));
    }
    let dec = HuffmanDecoder::read_table(data, pos)?;
    let n_chunks = read_uvarint(data, pos)? as usize;
    if n_chunks != n.div_ceil(chunk) {
        return Err(CodecError::Corrupt("chunk count mismatch"));
    }
    // Each gap-array entry is ≥ 1 byte, so a chunk count that exceeds the
    // bytes still present cannot be honest — checked before the table
    // allocation below.
    if n_chunks > data.len() - *pos {
        return Err(CodecError::UnexpectedEof);
    }
    let mut lens = Vec::with_capacity(n_chunks);
    let mut total = 0usize;
    for _ in 0..n_chunks {
        let l = read_uvarint(data, pos)? as usize;
        // saturating: forged per-chunk lengths must not overflow the sum
        // (the EOF check below still fires — data.len() is far below the
        // saturation point)
        total = total.saturating_add(l);
        lens.push(l);
    }
    if total > data.len() - *pos {
        return Err(CodecError::UnexpectedEof);
    }
    Ok((n, chunk, dec, lens, *pos))
}

fn decode_one_chunk(
    data: &[u8],
    offset: usize,
    len: usize,
    dec: &HuffmanDecoder,
    want: usize,
) -> Result<Vec<u32>, CodecError> {
    let mut out = vec![0u32; want];
    decode_one_chunk_into(data, offset, len, dec, &mut out)?;
    Ok(out)
}

fn decode_one_chunk_into(
    data: &[u8],
    offset: usize,
    len: usize,
    dec: &HuffmanDecoder,
    out: &mut [u32],
) -> Result<(), CodecError> {
    if offset + len > data.len() {
        return Err(CodecError::UnexpectedEof);
    }
    let mut r = BitReader::new(&data[offset..offset + len]);
    dec.decode_into(&mut r, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn sample(n: usize, alphabet: u32, seed: u64) -> Vec<u32> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| rng.gen_range(0..alphabet) * rng.gen_range(0..2))
            .collect()
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [0usize, 1, 100, 4096, 4097, 20_000] {
            let syms = sample(n, 64, n as u64);
            let enc = encode_chunked(&syms, 64, DEFAULT_CHUNK);
            assert_eq!(decode_chunked(&enc).unwrap(), syms, "n={n}");
        }
    }

    #[test]
    fn tiny_chunks_roundtrip() {
        let syms = sample(1000, 16, 3);
        let enc = encode_chunked(&syms, 16, 7);
        assert_eq!(decode_chunked(&enc).unwrap(), syms);
    }

    #[test]
    fn chunks_decode_independently() {
        let syms = sample(10_000, 128, 9);
        let chunk = 1024;
        let enc = encode_chunked(&syms, 128, chunk);
        // Random-access every chunk and reassemble out of order.
        let n_chunks = syms.len().div_ceil(chunk);
        let mut pieces: Vec<(usize, Vec<u32>)> = Vec::new();
        for k in (0..n_chunks).rev() {
            pieces.push((k, decode_chunk_at(&enc, k).unwrap()));
        }
        pieces.sort_by_key(|(k, _)| *k);
        let reassembled: Vec<u32> = pieces.into_iter().flat_map(|(_, p)| p).collect();
        assert_eq!(reassembled, syms);
    }

    #[test]
    fn gap_array_overhead_is_small() {
        let syms = vec![0u32; 100_000];
        let enc = encode_chunked(&syms, 4, DEFAULT_CHUNK);
        // all-zero symbols: ~1 bit each plus per-chunk alignment + gaps
        assert!(enc.len() < 100_000 / 8 + 512, "{} bytes", enc.len());
    }

    #[test]
    fn corrupt_streams_error() {
        let syms = sample(5000, 32, 4);
        let enc = encode_chunked(&syms, 32, 512);
        for cut in [0, 1, 7, enc.len() / 2, enc.len() - 1] {
            assert!(decode_chunked(&enc[..cut]).is_err());
        }
        assert!(decode_chunk_at(&enc, 999).is_err());
    }

    #[test]
    fn into_variants_bit_identical_with_dirty_buffers() {
        let syms = sample(9000, 64, 11);
        let enc = encode_chunked(&syms, 64, 1024);
        let mut out = vec![0xAAu8; 17]; // dirty, wrong-sized target
        encode_chunked_into(&syms, 64, 1024, &mut out);
        assert_eq!(enc, out);
        let mut dec = vec![7u32; 3];
        decode_chunked_into(&enc, &mut dec).unwrap();
        assert_eq!(dec, syms);
    }

    #[test]
    fn slice_variant_checks_length_and_decodes() {
        let syms = sample(9000, 64, 11);
        let enc = encode_chunked(&syms, 64, 1024);
        let mut dst = vec![7u32; syms.len()];
        decode_chunked_into_slice(&enc, &mut dst).unwrap();
        assert_eq!(dst, syms);
        let mut wrong = vec![0u32; syms.len() - 1];
        assert_eq!(
            decode_chunked_into_slice(&enc, &mut wrong).unwrap_err(),
            CodecError::Corrupt("symbol count mismatch")
        );
    }

    #[test]
    fn forged_length_is_rejected_before_allocation() {
        use crate::varint::write_uvarint;
        // A few honest-looking header bytes declaring 2^39 symbols with
        // chunk size 1: decoding must fail fast on the length guard, not
        // attempt terabyte-scale `with_capacity` calls.
        let mut forged = Vec::new();
        write_uvarint(&mut forged, 1u64 << 39); // n
        write_uvarint(&mut forged, 1); // chunk
        forged.extend_from_slice(&[0; 16]);
        assert_eq!(
            decode_chunked(&forged).unwrap_err(),
            CodecError::Corrupt("declared length exceeds remaining input")
        );

        // Forged per-chunk lengths near usize::MAX must not overflow the
        // gap-array sum (debug-mode panic) — they must EOF out.
        let syms = sample(100, 8, 6);
        let enc = encode_chunked(&syms, 8, 4096);
        let mut bad = enc.clone();
        let tail = bad.len() - 1;
        bad.truncate(tail.min(bad.len()));
        assert!(decode_chunked(&bad).is_err());
    }

    #[test]
    fn single_chunk_equals_plain_content() {
        let syms = sample(100, 8, 5);
        let enc = encode_chunked(&syms, 8, 4096);
        assert_eq!(decode_chunk_at(&enc, 0).unwrap(), syms);
    }
}
