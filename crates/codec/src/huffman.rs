//! Canonical Huffman coding.
//!
//! The entropy stage of cuSZ (and our GDeflate) — built once per buffer from
//! a histogram, encoded LSB-first with bit-reversed canonical codes (the
//! DEFLATE convention), decoded through a flat `2^max_len` lookup table.
//! Code lengths are limited to [`MAX_CODE_LEN`] by frequency-halving, which
//! keeps the decode table small and mirrors cuSZ's fixed-width codebooks.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::varint::{read_uvarint, write_uvarint};

/// Maximum canonical code length (DEFLATE's limit; decode table = 2^15).
pub const MAX_CODE_LEN: u32 = 15;

/// Histogram of `symbols` over an alphabet of `alphabet_size`.
///
/// # Panics
/// Debug-panics when a symbol is out of range.
pub fn histogram(symbols: &[u32], alphabet_size: usize) -> Vec<u64> {
    let mut h = vec![0u64; alphabet_size];
    histogram_into(symbols, &mut h);
    h
}

/// [`histogram`] into a caller-provided table (zeroed first) — the pooled
/// warm path. The table's length is the alphabet size.
///
/// # Panics
/// Debug-panics when a symbol is out of range.
pub fn histogram_into(symbols: &[u32], table: &mut [u64]) {
    table.fill(0);
    for &s in symbols {
        debug_assert!((s as usize) < table.len(), "symbol {s} out of alphabet");
        table[s as usize] += 1;
    }
}

/// Builds length-limited Huffman code lengths from frequencies.
///
/// Symbols with zero frequency get length 0 (no code). A single-symbol
/// alphabet gets length 1.
pub fn build_code_lengths(freqs: &[u64], max_len: u32) -> Vec<u8> {
    let mut lengths = Vec::new();
    CodebookScratch::default().build_lengths(freqs, max_len, &mut lengths);
    lengths
}

/// Canonical code assignment: `codes[sym]` is the *bit-reversed* canonical
/// code (ready for LSB-first emission) and `lengths[sym]` its length.
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let mut codes = Vec::new();
    CodebookScratch::default().assign_codes(lengths, &mut codes);
    codes
}

// (freq, node id) — min-heap by Reverse; node ids are unique, so the pop
// order (and therefore the tree shape) is fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapItem(u64, usize);

/// Reusable scratch behind codebook construction — the buffers every build
/// needs (a halvable frequency copy, the merge heap, parent links, the
/// canonical-code counting tables), kept so repeated builds on a warm path
/// allocate nothing. [`build_code_lengths`] / [`canonical_codes`] are thin
/// wrappers over a throwaway scratch; pooled callers
/// ([`HuffmanEncoder::rebuild_from_freqs`], the chunked encoder) hold one
/// and reuse it. Output is identical either way.
#[derive(Debug, Default)]
pub struct CodebookScratch {
    freqs: Vec<u64>,
    present: Vec<usize>,
    parent: Vec<usize>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapItem>>,
    bl_count: Vec<u32>,
    next_code: Vec<u32>,
}

impl CodebookScratch {
    /// [`build_code_lengths`] into a caller-provided vector (cleared
    /// first), reusing this scratch's buffers.
    pub fn build_lengths(&mut self, freqs: &[u64], max_len: u32, lengths: &mut Vec<u8>) {
        assert!((1..=32).contains(&max_len));
        self.freqs.clear();
        self.freqs.extend_from_slice(freqs);
        loop {
            self.unlimited_lengths(lengths);
            let deepest = lengths.iter().copied().max().unwrap_or(0) as u32;
            if deepest <= max_len {
                return;
            }
            // Flatten the distribution and retry: halving frequencies
            // shrinks depth quickly and converges (all-equal freqs give
            // ~log2(n) depth).
            for f in self.freqs.iter_mut() {
                if *f > 0 {
                    *f = (*f).div_ceil(2);
                }
            }
        }
    }

    /// Plain (unlimited-depth) Huffman code lengths over `self.freqs` via
    /// pairwise merging.
    fn unlimited_lengths(&mut self, lengths: &mut Vec<u8>) {
        lengths.clear();
        lengths.resize(self.freqs.len(), 0);
        self.present.clear();
        self.present.extend(
            self.freqs
                .iter()
                .enumerate()
                .filter(|(_, &f)| f > 0)
                .map(|(i, _)| i),
        );
        match self.present.len() {
            0 => return,
            1 => {
                lengths[self.present[0]] = 1;
                return;
            }
            _ => {}
        }

        // Node arena: leaves then internal nodes; parent links give depths.
        use std::cmp::Reverse;
        self.parent.clear();
        self.parent.resize(self.present.len(), usize::MAX);
        self.heap.clear();
        for (leaf, &sym) in self.present.iter().enumerate() {
            self.heap.push(Reverse(HeapItem(self.freqs[sym], leaf)));
        }
        while self.heap.len() > 1 {
            let Reverse(HeapItem(fa, a)) = self.heap.pop().unwrap();
            let Reverse(HeapItem(fb, b)) = self.heap.pop().unwrap();
            let id = self.parent.len();
            self.parent.push(usize::MAX);
            self.parent[a] = id;
            self.parent[b] = id;
            self.heap.push(Reverse(HeapItem(fa + fb, id)));
        }
        for (leaf, &sym) in self.present.iter().enumerate() {
            let mut depth = 0u8;
            let mut node = leaf;
            while self.parent[node] != usize::MAX {
                node = self.parent[node];
                depth += 1;
            }
            lengths[sym] = depth;
        }
    }

    /// [`canonical_codes`] into a caller-provided vector (cleared first),
    /// reusing this scratch's counting tables.
    pub fn assign_codes(&mut self, lengths: &[u8], codes: &mut Vec<u32>) {
        let max = lengths.iter().copied().max().unwrap_or(0) as usize;
        self.bl_count.clear();
        self.bl_count.resize(max + 1, 0);
        for &l in lengths {
            if l > 0 {
                self.bl_count[l as usize] += 1;
            }
        }
        self.next_code.clear();
        self.next_code.resize(max + 2, 0);
        let mut code = 0u32;
        for bits in 1..=max {
            code = (code + self.bl_count[bits - 1]) << 1;
            self.next_code[bits] = code;
        }
        codes.clear();
        codes.resize(lengths.len(), 0);
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                let c = self.next_code[l as usize];
                self.next_code[l as usize] += 1;
                codes[sym] = reverse_bits(c, l as u32);
            }
        }
    }
}

#[inline]
fn reverse_bits(v: u32, n: u32) -> u32 {
    v.reverse_bits() >> (32 - n)
}

/// Canonical Huffman encoder.
#[derive(Debug, Clone, Default)]
pub struct HuffmanEncoder {
    lengths: Vec<u8>,
    codes: Vec<u32>,
}

impl HuffmanEncoder {
    /// Builds an encoder from frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Self {
        let mut enc = HuffmanEncoder::default();
        enc.rebuild_from_freqs(freqs, &mut CodebookScratch::default());
        enc
    }

    /// Rebuilds this encoder's codebook from `freqs` in place, reusing
    /// both the encoder's own length/code tables and the caller's
    /// [`CodebookScratch`] — the pooled warm path behind cuSZ's repeated
    /// chunk encodes. The resulting codebook is identical to
    /// [`HuffmanEncoder::from_freqs`].
    pub fn rebuild_from_freqs(&mut self, freqs: &[u64], scratch: &mut CodebookScratch) {
        scratch.build_lengths(freqs, MAX_CODE_LEN, &mut self.lengths);
        scratch.assign_codes(&self.lengths, &mut self.codes);
    }

    /// Per-symbol code lengths (0 = absent).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Emits one symbol.
    ///
    /// # Panics
    /// Debug-panics when the symbol has no code (zero frequency at build).
    #[inline]
    pub fn encode_symbol(&self, w: &mut BitWriter, sym: u32) {
        let len = self.lengths[sym as usize];
        debug_assert!(len > 0, "symbol {sym} had zero frequency");
        w.write_bits(self.codes[sym as usize] as u64, len as u32);
    }

    /// Emits a slice of symbols.
    pub fn encode_all(&self, w: &mut BitWriter, symbols: &[u32]) {
        for &s in symbols {
            self.encode_symbol(w, s);
        }
    }

    /// Total encoded size in bits for a histogram (for ratio estimation).
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * l as u64)
            .sum()
    }

    /// Serializes code lengths (zero runs RLE'd) for the stream header.
    pub fn write_table(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.lengths.len() as u64);
        let mut i = 0usize;
        while i < self.lengths.len() {
            let l = self.lengths[i];
            if l == 0 {
                let mut run = 0usize;
                while i + run < self.lengths.len() && self.lengths[i + run] == 0 {
                    run += 1;
                }
                out.push(0);
                write_uvarint(out, run as u64);
                i += run;
            } else {
                out.push(l);
                i += 1;
            }
        }
    }
}

/// Width of the multi-symbol decode prefix table: one peek of this many
/// bits resolves every code that fits entirely inside the window.
pub const DECODE_LUT_BITS: u32 = 12;

/// Maximum symbols resolved by a single prefix-table hit (short codes on
/// skewed data pack several symbols into one 12-bit window).
const LUT_SYMS: usize = 8;

/// One multi-symbol prefix-table entry: up to [`LUT_SYMS`] symbols whose
/// codes are fully contained in the peeked [`DECODE_LUT_BITS`] window,
/// plus the total bits they consume. `count == 0` means the window could
/// not resolve even one symbol (long code or invalid prefix) and the
/// caller must fall back to [`HuffmanDecoder::decode_symbol`].
#[derive(Debug, Clone, Copy)]
struct LutEntry {
    syms: [u32; LUT_SYMS],
    count: u8,
    bits: u8,
}

/// Table-driven canonical Huffman decoder.
#[derive(Debug)]
pub struct HuffmanDecoder {
    /// `table[peeked_bits] = (symbol, code_len)`; indexed by `max_len` bits.
    /// This is the scalar reference path ([`decode_symbol`]) and the
    /// fallback for codes longer than the prefix window.
    ///
    /// [`decode_symbol`]: HuffmanDecoder::decode_symbol
    table: Vec<(u32, u8)>,
    /// Multi-symbol prefix table indexed by [`DECODE_LUT_BITS`] peeked
    /// bits; empty when `max_len == 0`.
    lut: Vec<LutEntry>,
    max_len: u32,
}

impl HuffmanDecoder {
    /// Builds a decoder from per-symbol code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodecError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max_len == 0 {
            return Ok(HuffmanDecoder {
                table: Vec::new(),
                lut: Vec::new(),
                max_len: 0,
            });
        }
        if max_len > MAX_CODE_LEN {
            return Err(CodecError::Unsupported("code length beyond MAX_CODE_LEN"));
        }
        // Kraft check: a valid (possibly non-full) code never oversubscribes.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l as u32))
            .sum();
        if kraft > 1u64 << max_len {
            return Err(CodecError::Corrupt("oversubscribed Huffman code"));
        }
        let codes = canonical_codes(lengths);
        let mut table = vec![(u32::MAX, 0u8); 1usize << max_len];
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let base = codes[sym]; // already bit-reversed
            let step = 1usize << l;
            let mut idx = base as usize;
            while idx < table.len() {
                table[idx] = (sym as u32, l);
                idx += step;
            }
        }
        let lut = build_lut(&table, max_len);
        Ok(HuffmanDecoder {
            table,
            lut,
            max_len,
        })
    }

    /// Reads the table serialized by [`HuffmanEncoder::write_table`].
    pub fn read_table(data: &[u8], pos: &mut usize) -> Result<Self, CodecError> {
        let n = read_uvarint(data, pos)? as usize;
        if n > 1 << 20 {
            return Err(CodecError::Corrupt("absurd alphabet size"));
        }
        let mut lengths = Vec::with_capacity(n);
        while lengths.len() < n {
            let b = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
            *pos += 1;
            if b == 0 {
                let run = read_uvarint(data, pos)? as usize;
                // compare without summing: a forged run near usize::MAX
                // must not overflow the addition
                if run > n - lengths.len() {
                    return Err(CodecError::Corrupt("zero run overflows table"));
                }
                lengths.resize(lengths.len() + run, 0);
            } else {
                lengths.push(b);
            }
        }
        HuffmanDecoder::from_lengths(&lengths)
    }

    /// Decodes one symbol.
    #[inline]
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        if self.max_len == 0 {
            return Err(CodecError::Corrupt("decode with empty code"));
        }
        let peek = r.peek_bits(self.max_len) as usize;
        let (sym, len) = self.table[peek];
        if sym == u32::MAX {
            return Err(CodecError::Corrupt("invalid Huffman code"));
        }
        if (len as usize) > r.remaining_bits() {
            return Err(CodecError::UnexpectedEof);
        }
        r.consume(len as u32);
        Ok(sym)
    }

    /// Decodes exactly `out.len()` symbols into `out`.
    ///
    /// The hot path peeks [`DECODE_LUT_BITS`] bits and resolves every code
    /// contained in the window with one table hit — several symbols per
    /// lookup on skewed data — instead of one max-len peek per symbol. The
    /// fast path only engages when the reader still holds a full window
    /// and the entry does not overshoot the requested symbol count, so
    /// stream-end handling, exact-`n` semantics, and all error cases fall
    /// through to [`decode_symbol`](HuffmanDecoder::decode_symbol) and are
    /// byte-for-byte identical to the one-at-a-time walk (proptested in
    /// the codec suite).
    pub fn decode_into(&self, r: &mut BitReader<'_>, out: &mut [u32]) -> Result<(), CodecError> {
        let n = out.len();
        if self.max_len == 0 {
            if n == 0 {
                return Ok(());
            }
            return Err(CodecError::Corrupt("decode with empty code"));
        }
        let mut i = 0usize;
        while i < n {
            if r.remaining_bits() >= DECODE_LUT_BITS as usize {
                let e = &self.lut[r.peek_bits(DECODE_LUT_BITS) as usize];
                let c = e.count as usize;
                if c > 0 && c <= n - i {
                    // Every packed code lies inside the peeked window, so
                    // the reader holds at least `e.bits` buffered bits.
                    r.consume(e.bits as u32);
                    out[i..i + c].copy_from_slice(&e.syms[..c]);
                    i += c;
                    continue;
                }
            }
            out[i] = self.decode_symbol(r)?;
            i += 1;
        }
        Ok(())
    }

    /// Decodes exactly `n` symbols.
    pub fn decode_all(&self, r: &mut BitReader<'_>, n: usize) -> Result<Vec<u32>, CodecError> {
        let mut out = vec![0u32; n];
        self.decode_into(r, &mut out)?;
        Ok(out)
    }
}

/// Builds the multi-symbol prefix table from the flat `max_len` table.
///
/// For each possible window, greedily decode symbols as long as each
/// code's full length fits in the window's remaining *known* bits. The
/// flat-table lookup pads the unknown upper bits with zeros; by the prefix
/// property that padding can only matter when the selected code is longer
/// than the remaining bits, which is exactly the case we refuse to pack.
fn build_lut(table: &[(u32, u8)], max_len: u32) -> Vec<LutEntry> {
    let mask = (1usize << max_len) - 1;
    (0..1usize << DECODE_LUT_BITS)
        .map(|idx| {
            let mut e = LutEntry {
                syms: [0; LUT_SYMS],
                count: 0,
                bits: 0,
            };
            let mut used = 0u32;
            while (e.count as usize) < LUT_SYMS {
                let rem = DECODE_LUT_BITS - used;
                let (sym, len) = table[(idx >> used) & mask];
                if sym == u32::MAX || len as u32 > rem {
                    break;
                }
                e.syms[e.count as usize] = sym;
                e.count += 1;
                used += len as u32;
            }
            e.bits = used as u8;
            e
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32], alphabet: usize) {
        let freqs = histogram(symbols, alphabet);
        let enc = HuffmanEncoder::from_freqs(&freqs);
        let mut header = Vec::new();
        enc.write_table(&mut header);
        let mut w = BitWriter::new();
        enc.encode_all(&mut w, symbols);
        let payload = w.finish();

        let mut pos = 0;
        let dec = HuffmanDecoder::read_table(&header, &mut pos).unwrap();
        assert_eq!(pos, header.len());
        let mut r = BitReader::new(&payload);
        let decoded = dec.decode_all(&mut r, symbols.len()).unwrap();
        assert_eq!(decoded, symbols);
    }

    #[test]
    fn skewed_distribution_roundtrip() {
        let mut syms = vec![0u32; 1000];
        syms.extend(vec![1u32; 100]);
        syms.extend(vec![2u32; 10]);
        syms.push(3);
        roundtrip(&syms, 8);
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&vec![5u32; 64], 16);
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[0, 1, 0, 0, 1, 0], 2);
    }

    #[test]
    fn uniform_large_alphabet() {
        let syms: Vec<u32> = (0..4096u32).collect();
        roundtrip(&syms, 4096);
    }

    #[test]
    fn random_zipf_like() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let syms: Vec<u32> = (0..20_000)
            .map(|_| {
                let r: f64 = rng.gen();
                ((1.0 / (r + 0.001)).log2().floor() as u32).min(255)
            })
            .collect();
        roundtrip(&syms, 256);
    }

    #[test]
    fn skew_beats_uniform_in_bits() {
        let skew = histogram(&[0; 100], 4)
            .iter()
            .zip(histogram(&[1, 2, 3], 4).iter())
            .map(|(a, b)| a + b)
            .collect::<Vec<_>>();
        let enc = HuffmanEncoder::from_freqs(&skew);
        let bits = enc.encoded_bits(&skew);
        // 103 symbols; a fixed 2-bit code would need 206 bits.
        assert!(bits < 206, "huffman bits {bits}");
    }

    #[test]
    fn length_limit_enforced() {
        // Fibonacci-ish frequencies force deep trees without a limit.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs, MAX_CODE_LEN);
        assert!(lengths.iter().all(|&l| (l as u32) <= MAX_CODE_LEN));
        // still decodable
        let enc = HuffmanEncoder {
            codes: canonical_codes(&lengths),
            lengths,
        };
        let mut w = BitWriter::new();
        let syms: Vec<u32> = (0..40u32).collect();
        enc.encode_all(&mut w, &syms);
        let bytes = w.finish();
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode_all(&mut r, 40).unwrap(), syms);
    }

    #[test]
    fn empty_input() {
        let freqs = histogram(&[], 4);
        let enc = HuffmanEncoder::from_freqs(&freqs);
        assert!(enc.lengths().iter().all(|&l| l == 0));
    }

    #[test]
    fn pooled_rebuild_matches_fresh_build() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        // One scratch and one encoder reused across wildly different
        // distributions: every rebuild must equal a from-scratch build,
        // including the degenerate empty/single-symbol alphabets and a
        // depth-limited Fibonacci distribution.
        let mut scratch = CodebookScratch::default();
        let mut pooled = HuffmanEncoder::default();
        let mut fib = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in fib.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let mut cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0, 0, 7, 0],
            vec![1; 256],
            fib,
            (0..100).map(|_| rng.gen_range(0..1000u64)).collect(),
        ];
        for _ in 0..5 {
            cases.push((0..512).map(|_| rng.gen_range(0..50u64)).collect());
        }
        for freqs in &cases {
            let fresh = HuffmanEncoder::from_freqs(freqs);
            pooled.rebuild_from_freqs(freqs, &mut scratch);
            assert_eq!(pooled.lengths(), fresh.lengths());
            assert_eq!(pooled.codes, fresh.codes);
            assert_eq!(histogram_into_check(freqs), freqs.iter().sum::<u64>());
        }
    }

    // Sanity helper keeping histogram_into covered alongside the rebuild:
    // symbols reconstructed from a frequency table histogram back to it.
    fn histogram_into_check(freqs: &[u64]) -> u64 {
        let symbols: Vec<u32> = freqs
            .iter()
            .enumerate()
            .flat_map(|(s, &f)| std::iter::repeat_n(s as u32, f as usize))
            .collect();
        let mut table = vec![u64::MAX; freqs.len()]; // dirty: must be zeroed
        histogram_into(&symbols, &mut table);
        assert_eq!(table, freqs);
        symbols.len() as u64
    }

    #[test]
    fn corrupt_table_rejected() {
        // Oversubscribed: three symbols of length 1.
        assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn lut_decode_matches_symbol_at_a_time() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        // Zipf-ish: short codes dominate, with a long-code tail that forces
        // the LUT fallback path.
        let syms: Vec<u32> = (0..10_000)
            .map(|_| {
                let r: f64 = rng.gen();
                ((1.0 / (r + 0.0005)).log2().floor() as u32).min(500)
            })
            .collect();
        let freqs = histogram(&syms, 512);
        let enc = HuffmanEncoder::from_freqs(&freqs);
        let mut w = BitWriter::new();
        enc.encode_all(&mut w, &syms);
        let bytes = w.finish();
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();

        let mut r = BitReader::new(&bytes);
        let mut fast = vec![0u32; syms.len()];
        dec.decode_into(&mut r, &mut fast).unwrap();
        let tail_fast = r.remaining_bits();

        let mut r = BitReader::new(&bytes);
        let mut slow = Vec::with_capacity(syms.len());
        for _ in 0..syms.len() {
            slow.push(dec.decode_symbol(&mut r).unwrap());
        }
        assert_eq!(fast, slow);
        assert_eq!(fast, syms);
        assert_eq!(tail_fast, r.remaining_bits(), "same bits consumed");
    }

    #[test]
    fn lut_decode_truncation_errors_match_reference() {
        let syms: Vec<u32> = (0..256u32).chain(std::iter::repeat_n(3, 300)).collect();
        let freqs = histogram(&syms, 256);
        let enc = HuffmanEncoder::from_freqs(&freqs);
        let mut w = BitWriter::new();
        enc.encode_all(&mut w, &syms);
        let bytes = w.finish();
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        for cut in [0, 1, 2, bytes.len() / 2, bytes.len() - 1] {
            let mut rf = BitReader::new(&bytes[..cut]);
            let fast = dec.decode_into(&mut rf, &mut vec![0u32; syms.len()]);
            let mut rs = BitReader::new(&bytes[..cut]);
            let slow = (0..syms.len()).try_for_each(|_| dec.decode_symbol(&mut rs).map(|_| ()));
            assert_eq!(fast.is_err(), slow.is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn truncated_payload_errors() {
        let syms = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        let freqs = histogram(&syms, 4);
        let enc = HuffmanEncoder::from_freqs(&freqs);
        let mut w = BitWriter::new();
        enc.encode_all(&mut w, &syms);
        let bytes = w.finish();
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        let mut r = BitReader::new(&bytes[..bytes.len() - 1]);
        assert!(dec.decode_all(&mut r, syms.len()).is_err());
    }
}
