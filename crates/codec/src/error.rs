//! Error type shared by all codecs.

use std::fmt;

/// Decoding failure. Encoders are infallible by construction; decoders must
/// survive arbitrary (including corrupted) input without panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the stream was complete.
    UnexpectedEof,
    /// The stream is structurally invalid.
    Corrupt(&'static str),
    /// A declared length or parameter is out of the codec's supported range.
    Unsupported(&'static str),
    /// The stream's leading format byte matches no known compressor.
    UnknownFormat(u8),
    /// The integrity frame's checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the frame trailer.
        stored: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::Unsupported(what) => write!(f, "unsupported: {what}"),
            CodecError::UnknownFormat(id) => {
                write!(f, "unknown compressor id byte 0x{id:02x}")
            }
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored 0x{stored:08x}, computed 0x{computed:08x}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}
