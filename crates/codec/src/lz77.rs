//! LZ77 match finding with a hash-chain dictionary.
//!
//! One greedy matcher feeds all three byte-oriented lossless compressors
//! (LZ4, Snappy, GDeflate); each wraps the token stream in its own wire
//! format. The matcher hashes 4-byte windows and walks a bounded chain of
//! previous positions — the same structure zlib/LZ4 use, sized so the
//! search is O(depth) per position.

/// One token of an LZ77 parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzToken {
    /// `len` literal bytes starting at `start` in the input.
    Literal {
        /// Input offset of the first literal byte.
        start: usize,
        /// Number of literal bytes.
        len: usize,
    },
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match {
        /// Match length in bytes (≥ the matcher's `min_match`).
        len: usize,
        /// Backward distance in bytes (≥ 1).
        dist: usize,
    },
}

/// Matcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct LzConfig {
    /// Minimum match length worth emitting.
    pub min_match: usize,
    /// Maximum match length.
    pub max_match: usize,
    /// Maximum backward distance.
    pub window: usize,
    /// Maximum hash-chain positions examined per lookup.
    pub max_chain: usize,
}

impl Default for LzConfig {
    fn default() -> Self {
        LzConfig {
            min_match: 4,
            max_match: 65_535,
            window: 65_535,
            max_chain: 32,
        }
    }
}

const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Greedy LZ77 parse of `data`.
///
/// Adjacent literals are coalesced into single [`LzToken::Literal`] tokens;
/// the concatenation of tokens reproduces the input exactly (verified by
/// [`expand`]).
pub fn find_matches(data: &[u8], cfg: &LzConfig) -> Vec<LzToken> {
    assert!(cfg.min_match >= 4, "hash covers 4 bytes");
    let n = data.len();
    let mut tokens = Vec::new();
    if n == 0 {
        return tokens;
    }

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |tokens: &mut Vec<LzToken>, lit_start: usize, end: usize| {
        if end > lit_start {
            tokens.push(LzToken::Literal {
                start: lit_start,
                len: end - lit_start,
            });
        }
    };

    while i + cfg.min_match <= n {
        let h = hash4(&data[i..]);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut depth = 0usize;
        while cand != usize::MAX && depth < cfg.max_chain {
            let dist = i - cand;
            if dist > cfg.window {
                break;
            }
            let limit = (n - i).min(cfg.max_match);
            let mut l = 0usize;
            while l < limit && data[cand + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = dist;
                if l >= limit {
                    break;
                }
            }
            cand = prev[cand];
            depth += 1;
        }

        if best_len >= cfg.min_match {
            flush_literals(&mut tokens, lit_start, i);
            tokens.push(LzToken::Match {
                len: best_len,
                dist: best_dist,
            });
            // Insert hash entries for the matched region (bounded to keep
            // the parse O(n) even on pathological inputs).
            let end = i + best_len;
            let insert_end = end.min(i + 256).min(n.saturating_sub(cfg.min_match - 1));
            while i < insert_end {
                let h = hash4(&data[i..]);
                prev[i] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
            lit_start = end;
        } else {
            prev[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    flush_literals(&mut tokens, lit_start, n);
    tokens
}

/// Expands a token stream back into bytes (the reference decoder; format
/// crates implement their own expansion over their wire encoding).
pub fn expand(tokens: &[LzToken], input_for_literals: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            LzToken::Literal { start, len } => {
                out.extend_from_slice(&input_for_literals[start..start + len]);
            }
            LzToken::Match { len, dist } => {
                assert!(dist >= 1 && dist <= out.len(), "bad match distance");
                // Overlapping copies are byte-serial by definition.
                let from = out.len() - dist;
                for k in 0..len {
                    let b = out[from + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<LzToken> {
        let tokens = find_matches(data, &LzConfig::default());
        assert_eq!(expand(&tokens, data), data);
        tokens
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(roundtrip(b"").is_empty());
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn repeated_pattern_found() {
        let data = b"abcdabcdabcdabcd";
        let tokens = roundtrip(data);
        assert!(
            tokens
                .iter()
                .any(|t| matches!(t, LzToken::Match { dist: 4, .. })),
            "expected a distance-4 match, got {tokens:?}"
        );
    }

    #[test]
    fn run_of_zeros_compresses_to_overlapping_match() {
        let data = vec![0u8; 1000];
        let tokens = roundtrip(&data);
        assert!(
            tokens.len() <= 3,
            "run should be a couple of tokens: {}",
            tokens.len()
        );
        assert!(tokens
            .iter()
            .any(|t| matches!(t, LzToken::Match { dist: 1, .. })));
    }

    #[test]
    fn incompressible_random_is_all_literals() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let data: Vec<u8> = (0..4096).map(|_| rng.gen()).collect();
        let tokens = roundtrip(&data);
        let match_bytes: usize = tokens
            .iter()
            .filter_map(|t| match t {
                LzToken::Match { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert!(
            match_bytes < data.len() / 8,
            "random data matched {match_bytes} bytes"
        );
    }

    #[test]
    fn long_match_lengths_capped() {
        let cfg = LzConfig {
            max_match: 16,
            ..LzConfig::default()
        };
        let data = vec![7u8; 200];
        let tokens = find_matches(&data, &cfg);
        assert_eq!(expand(&tokens, &data), data);
        for t in &tokens {
            if let LzToken::Match { len, .. } = t {
                assert!(*len <= 16);
            }
        }
    }

    #[test]
    fn structured_float_bytes() {
        // Interleaved doubles with repeating exponents — the byte structure
        // lossless compressors see on tensor data.
        let vals: Vec<f64> = (0..512).map(|i| (i % 16) as f64 * 0.125).collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let tokens = roundtrip(&bytes);
        let match_bytes: usize = tokens
            .iter()
            .filter_map(|t| match t {
                LzToken::Match { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert!(
            match_bytes > bytes.len() / 2,
            "periodic data should mostly match"
        );
    }
}
