//! Property tests over the codec primitives: anything in, same thing out.

use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::bitpack::{pack, required_width, unpack};
use codec_kit::chunked::{decode_chunk_at, decode_chunked, encode_chunked};
use codec_kit::huffman::{histogram, HuffmanDecoder, HuffmanEncoder};
use codec_kit::lz77::{expand, find_matches, LzConfig};
use codec_kit::rle::{delta_decode, delta_encode, rle_decode, rle_encode};
use codec_kit::varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn varints_roundtrip(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn ivarints_roundtrip(values in prop::collection::vec(any::<i64>(), 0..200)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_ivarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn bitio_roundtrips_any_width_sequence(
        items in prop::collection::vec((any::<u64>(), 0u32..=57), 0..500)
    ) {
        let mut w = BitWriter::new();
        for &(v, n) in &items {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &items {
            let want = if n == 0 { 0 } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.read_bits(n).unwrap(), want);
        }
    }

    #[test]
    fn bitpack_roundtrips(values in prop::collection::vec(0u64..(1 << 40), 0..300)) {
        let width = required_width(&values);
        let mut w = BitWriter::new();
        pack(&values, width, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        prop_assert_eq!(unpack(&mut r, width, values.len()).unwrap(), values);
    }

    #[test]
    fn rle_roundtrips(values in prop::collection::vec(0u32..50, 0..400)) {
        let mut buf = Vec::new();
        rle_encode(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(rle_decode(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn delta_roundtrips(values in prop::collection::vec(any::<u32>(), 0..400)) {
        let mut v = values.clone();
        delta_encode(&mut v);
        delta_decode(&mut v);
        prop_assert_eq!(v, values);
    }

    #[test]
    fn lz77_expand_inverts_parse(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let tokens = find_matches(&data, &LzConfig::default());
        prop_assert_eq!(expand(&tokens, &data), data);
    }

    #[test]
    fn lz77_periodic_data(period in 1usize..32, reps in 1usize..64) {
        let data: Vec<u8> = (0..period * reps).map(|i| (i % period) as u8).collect();
        let tokens = find_matches(&data, &LzConfig::default());
        prop_assert_eq!(expand(&tokens, &data), data);
    }

    #[test]
    fn huffman_roundtrips_any_symbols(
        symbols in prop::collection::vec(0u32..300, 1..3000)
    ) {
        let freqs = histogram(&symbols, 300);
        let enc = HuffmanEncoder::from_freqs(&freqs);
        let mut header = Vec::new();
        enc.write_table(&mut header);
        let mut w = BitWriter::new();
        enc.encode_all(&mut w, &symbols);
        let payload = w.finish();

        let mut pos = 0;
        let dec = HuffmanDecoder::read_table(&header, &mut pos).unwrap();
        let mut r = BitReader::new(&payload);
        prop_assert_eq!(dec.decode_all(&mut r, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn chunked_huffman_roundtrips(
        symbols in prop::collection::vec(0u32..64, 0..5000),
        chunk in 1usize..1500,
    ) {
        let enc = encode_chunked(&symbols, 64, chunk);
        prop_assert_eq!(decode_chunked(&enc).unwrap(), symbols.clone());
        // Spot-check a random-access chunk.
        if !symbols.is_empty() {
            let k = (symbols.len() / chunk.max(1)).saturating_sub(1);
            let piece = decode_chunk_at(&enc, k).unwrap();
            let lo = k * chunk;
            let hi = (lo + chunk).min(symbols.len());
            prop_assert_eq!(piece, symbols[lo..hi].to_vec());
        }
    }

    #[test]
    fn decoders_survive_arbitrary_garbage(garbage in prop::collection::vec(any::<u8>(), 0..300)) {
        // None of these may panic; errors are fine, and any accidental
        // success must at least return something well-formed.
        let mut pos = 0;
        let _ = read_uvarint(&garbage, &mut pos);
        let mut pos = 0;
        let _ = rle_decode(&garbage, &mut pos);
        let _ = decode_chunked(&garbage);
        let mut pos = 0;
        let _ = HuffmanDecoder::read_table(&garbage, &mut pos);
    }
}
