//! # qcircuit — gates, circuits and QAOA workloads
//!
//! Second substrate crate of the QCF reproduction: everything needed to
//! *describe* the quantum programs whose simulation tensors the paper
//! compresses. Simulation itself lives in the `qtensor` crate.
//!
//! * [`Gate`] — gate set with unitaries and per-qubit diagonality metadata.
//! * [`Circuit`] — ordered gate list over a register.
//! * [`Graph`] — seeded MaxCut instances (random regular, Erdős–Rényi, …).
//! * [`qaoa`] — the QAOA ansatz builder used by every end-to-end experiment.

pub mod circuit;
pub mod gate;
pub mod graph;
pub mod qaoa;

pub use circuit::Circuit;
pub use gate::Gate;
pub use graph::Graph;
pub use qaoa::{qaoa_circuit, QaoaParams};
