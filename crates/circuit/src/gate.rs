//! Quantum gates and their unitary matrices.
//!
//! Each [`Gate`] knows the qubits it touches and can produce its unitary as a
//! row-major `2^k × 2^k` matrix. The tensor-network builder additionally asks
//! which qubits a gate acts on *diagonally* — i.e. the matrix entry
//! `U[out, in]` vanishes unless the qubit's bit agrees in `out` and `in`.
//! Diagonal qubits reuse the existing wire variable instead of introducing a
//! new one, which is the rank-reduction trick that keeps QTensor networks
//! small (all of QAOA's cost-layer gates are diagonal).

use std::f64::consts::FRAC_1_SQRT_2;
use tensornet::Complex64;

/// A gate instance applied to specific qubits.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z (diagonal).
    Z(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// T gate = diag(1, e^{iπ/4}).
    T(usize),
    /// Rotation about X: `exp(-i θ/2 X)`.
    Rx(usize, f64),
    /// Rotation about Y: `exp(-i θ/2 Y)`.
    Ry(usize, f64),
    /// Rotation about Z: `exp(-i θ/2 Z)` (diagonal).
    Rz(usize, f64),
    /// Controlled-NOT (control, target). Diagonal in the control only.
    Cnot(usize, usize),
    /// Controlled-Z (fully diagonal).
    Cz(usize, usize),
    /// Two-qubit ZZ rotation `exp(-i θ/2 Z⊗Z)` (fully diagonal). QAOA's
    /// cost-layer gate.
    Zz(usize, usize, f64),
    /// SWAP gate.
    Swap(usize, usize),
}

impl Gate {
    /// Qubits the gate acts on, in tensor-axis order.
    pub fn qubits(&self) -> Vec<usize> {
        let (qs, k) = self.qubits_array();
        qs[..k].to_vec()
    }

    /// Allocation-free [`Gate::qubits`]: the qubits in a fixed-size array
    /// plus the arity. Unused slots are zero.
    pub fn qubits_array(&self) -> ([usize; 2], usize) {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::T(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _) => ([q, 0], 1),
            Gate::Cnot(a, b) | Gate::Cz(a, b) | Gate::Zz(a, b, _) | Gate::Swap(a, b) => ([a, b], 2),
        }
    }

    /// Number of qubits the gate touches.
    pub fn arity(&self) -> usize {
        self.qubits_array().1
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "H",
            Gate::X(_) => "X",
            Gate::Y(_) => "Y",
            Gate::Z(_) => "Z",
            Gate::S(_) => "S",
            Gate::T(_) => "T",
            Gate::Rx(..) => "RX",
            Gate::Ry(..) => "RY",
            Gate::Rz(..) => "RZ",
            Gate::Cnot(..) => "CNOT",
            Gate::Cz(..) => "CZ",
            Gate::Zz(..) => "ZZ",
            Gate::Swap(..) => "SWAP",
        }
    }

    /// The inverse gate (daggered unitary). Used to build `⟨ψ|` networks.
    pub fn dagger(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Rz(q, -std::f64::consts::FRAC_PI_2), // S† up to global phase
            Gate::T(q) => Gate::Rz(q, -std::f64::consts::FRAC_PI_4), // T† up to global phase
            Gate::Rx(q, t) => Gate::Rx(q, -t),
            Gate::Ry(q, t) => Gate::Ry(q, -t),
            Gate::Rz(q, t) => Gate::Rz(q, -t),
            Gate::Zz(a, b, t) => Gate::Zz(a, b, -t),
            // Self-inverse gates.
            ref g => g.clone(),
        }
    }

    /// Returns the same gate re-targeted through a qubit mapping. Used by
    /// lightcone extraction to compact a subcircuit onto fresh wire ids.
    pub fn map_qubits(&self, f: impl Fn(usize) -> usize) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::T(q) => Gate::T(f(q)),
            Gate::Rx(q, t) => Gate::Rx(f(q), t),
            Gate::Ry(q, t) => Gate::Ry(f(q), t),
            Gate::Rz(q, t) => Gate::Rz(f(q), t),
            Gate::Cnot(a, b) => Gate::Cnot(f(a), f(b)),
            Gate::Cz(a, b) => Gate::Cz(f(a), f(b)),
            Gate::Zz(a, b, t) => Gate::Zz(f(a), f(b), t),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
        }
    }

    /// Row-major unitary matrix, dimension `2^arity × 2^arity`.
    ///
    /// Basis ordering follows the qubit order returned by [`Gate::qubits`],
    /// first qubit most significant.
    pub fn matrix(&self) -> Vec<Complex64> {
        let (m, len) = self.matrix_array();
        m[..len].to_vec()
    }

    /// Allocation-free [`Gate::matrix`]: the row-major unitary in a
    /// fixed-size array plus its entry count (`4^arity`). Unused slots are
    /// zero.
    pub fn matrix_array(&self) -> ([Complex64; 16], usize) {
        let z = Complex64::ZERO;
        let o = Complex64::ONE;
        let mut m = [z; 16];
        let len = match *self {
            Gate::H(_) => {
                let h = Complex64::real(FRAC_1_SQRT_2);
                m[..4].copy_from_slice(&[h, h, h, -h]);
                4
            }
            Gate::X(_) => {
                m[..4].copy_from_slice(&[z, o, o, z]);
                4
            }
            Gate::Y(_) => {
                m[..4].copy_from_slice(&[z, -Complex64::I, Complex64::I, z]);
                4
            }
            Gate::Z(_) => {
                m[..4].copy_from_slice(&[o, z, z, -o]);
                4
            }
            Gate::S(_) => {
                m[..4].copy_from_slice(&[o, z, z, Complex64::I]);
                4
            }
            Gate::T(_) => {
                m[..4].copy_from_slice(&[o, z, z, Complex64::cis(std::f64::consts::FRAC_PI_4)]);
                4
            }
            Gate::Rx(_, t) => {
                let c = Complex64::real((t / 2.0).cos());
                let s = Complex64::new(0.0, -(t / 2.0).sin());
                m[..4].copy_from_slice(&[c, s, s, c]);
                4
            }
            Gate::Ry(_, t) => {
                let c = Complex64::real((t / 2.0).cos());
                let s = Complex64::real((t / 2.0).sin());
                m[..4].copy_from_slice(&[c, -s, s, c]);
                4
            }
            Gate::Rz(_, t) => {
                m[..4].copy_from_slice(&[Complex64::cis(-t / 2.0), z, z, Complex64::cis(t / 2.0)]);
                4
            }
            Gate::Cnot(..) => {
                m.copy_from_slice(&[
                    o, z, z, z, //
                    z, o, z, z, //
                    z, z, z, o, //
                    z, z, o, z,
                ]);
                16
            }
            Gate::Cz(..) => {
                m.copy_from_slice(&[
                    o, z, z, z, //
                    z, o, z, z, //
                    z, z, o, z, //
                    z, z, z, -o,
                ]);
                16
            }
            Gate::Zz(_, _, t) => {
                let a = Complex64::cis(-t / 2.0); // parallel spins
                let b = Complex64::cis(t / 2.0); // anti-parallel spins
                m.copy_from_slice(&[
                    a, z, z, z, //
                    z, b, z, z, //
                    z, z, b, z, //
                    z, z, z, a,
                ]);
                16
            }
            Gate::Swap(..) => {
                m.copy_from_slice(&[
                    o, z, z, z, //
                    z, z, o, z, //
                    z, o, z, z, //
                    z, z, z, o,
                ]);
                16
            }
        };
        (m, len)
    }

    /// True when the matrix is diagonal in the given *local* qubit position
    /// (0-based, matching [`Gate::qubits`] order): every nonzero entry has
    /// that qubit's bit equal in row and column.
    pub fn is_diagonal_in(&self, local_qubit: usize) -> bool {
        let k = self.arity();
        debug_assert!(local_qubit < k);
        let dim = 1usize << k;
        let m = self.matrix();
        let bit = k - 1 - local_qubit; // first qubit most significant
        for row in 0..dim {
            for col in 0..dim {
                let v = m[row * dim + col];
                if v != Complex64::ZERO && ((row >> bit) & 1) != ((col >> bit) & 1) {
                    return false;
                }
            }
        }
        true
    }

    /// True when the gate is diagonal in every qubit it touches.
    pub fn is_diagonal(&self) -> bool {
        (0..self.arity()).all(|q| self.is_diagonal_in(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks U · U† = I.
    fn assert_unitary(g: &Gate) {
        let m = g.matrix();
        let dim = 1usize << g.arity();
        for i in 0..dim {
            for j in 0..dim {
                let mut dot = Complex64::ZERO;
                for k in 0..dim {
                    dot += m[i * dim + k] * m[j * dim + k].conj();
                }
                let want = if i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(
                    dot.approx_eq(want, 1e-12),
                    "{} not unitary at ({i},{j})",
                    g.name()
                );
            }
        }
    }

    fn all_gates() -> Vec<Gate> {
        vec![
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::T(0),
            Gate::Rx(0, 0.37),
            Gate::Ry(0, 1.2),
            Gate::Rz(0, -0.9),
            Gate::Cnot(0, 1),
            Gate::Cz(0, 1),
            Gate::Zz(0, 1, 0.71),
            Gate::Swap(0, 1),
        ]
    }

    #[test]
    fn every_gate_is_unitary() {
        for g in all_gates() {
            assert_unitary(&g);
        }
    }

    #[test]
    fn dagger_inverts() {
        for g in all_gates() {
            let m = g.matrix();
            let md = g.dagger().matrix();
            let dim = 1usize << g.arity();
            // U† U should be the identity up to a global phase (S/T daggers
            // are expressed as RZ, which differs by a phase).
            let mut prod = vec![Complex64::ZERO; dim * dim];
            for i in 0..dim {
                for j in 0..dim {
                    let mut dot = Complex64::ZERO;
                    for k in 0..dim {
                        dot += md[i * dim + k] * m[k * dim + j];
                    }
                    prod[i * dim + j] = dot;
                }
            }
            let phase = prod[0];
            assert!(phase.abs() > 0.99, "{}: U†U diagonal vanished", g.name());
            for i in 0..dim {
                for j in 0..dim {
                    let want = if i == j { phase } else { Complex64::ZERO };
                    assert!(
                        prod[i * dim + j].approx_eq(want, 1e-12),
                        "{}: U†U not phase*I",
                        g.name()
                    );
                }
            }
        }
    }

    #[test]
    fn diagonality_detection() {
        assert!(Gate::Z(0).is_diagonal());
        assert!(Gate::Rz(0, 0.5).is_diagonal());
        assert!(Gate::Cz(0, 1).is_diagonal());
        assert!(Gate::Zz(0, 1, 0.3).is_diagonal());
        assert!(!Gate::H(0).is_diagonal());
        assert!(!Gate::X(0).is_diagonal());
        assert!(!Gate::Swap(0, 1).is_diagonal());
        // CNOT: diagonal in the control (local 0), not the target (local 1).
        assert!(Gate::Cnot(0, 1).is_diagonal_in(0));
        assert!(!Gate::Cnot(0, 1).is_diagonal_in(1));
    }

    #[test]
    fn zz_matrix_signs() {
        let t = 0.8;
        let m = Gate::Zz(0, 1, t).matrix();
        assert!(m[0].approx_eq(Complex64::cis(-t / 2.0), 1e-12)); // |00>
        assert!(m[5].approx_eq(Complex64::cis(t / 2.0), 1e-12)); // |01>
        assert!(m[10].approx_eq(Complex64::cis(t / 2.0), 1e-12)); // |10>
        assert!(m[15].approx_eq(Complex64::cis(-t / 2.0), 1e-12)); // |11>
    }

    #[test]
    fn rx_at_pi_is_x_up_to_phase() {
        let m = Gate::Rx(0, std::f64::consts::PI).matrix();
        // RX(π) = -i X
        assert!(m[1].approx_eq(-Complex64::I, 1e-12));
        assert!(m[2].approx_eq(-Complex64::I, 1e-12));
        assert!(m[0].abs() < 1e-12 && m[3].abs() < 1e-12);
    }

    #[test]
    fn qubit_order_is_stable() {
        assert_eq!(Gate::Cnot(3, 1).qubits(), vec![3, 1]);
        assert_eq!(Gate::Zz(2, 5, 0.1).qubits(), vec![2, 5]);
    }
}
