//! Graph workloads for QAOA MaxCut.
//!
//! The paper evaluates on QAOA MaxCut circuits over random regular graphs
//! (the workload QTensor's authors use throughout their papers). All
//! generators are seeded so every experiment is reproducible bit-for-bit.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An undirected simple graph with `n` vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph from an edge list; edges are normalized to `(lo, hi)`
    /// and deduplicated, self-loops rejected.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut norm: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(a < n && b < n, "edge endpoint out of range");
                assert_ne!(a, b, "self-loop");
                (a.min(b), a.max(b))
            })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        Graph { n, edges: norm }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Normalized, sorted edge list.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Per-vertex degree list.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            d[a] += 1;
            d[b] += 1;
        }
        d
    }

    /// Cut value of the bipartition encoded in `bits` (bit i = side of
    /// vertex i): the number of edges crossing the cut.
    pub fn cut_value(&self, bits: u64) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| ((bits >> a) ^ (bits >> b)) & 1 == 1)
            .count()
    }

    /// Exhaustive MaxCut (for small `n`, used as oracle in tests).
    ///
    /// # Panics
    /// Panics for `n > 24` — exhaustive search would be too slow.
    pub fn max_cut_bruteforce(&self) -> usize {
        assert!(self.n <= 24, "brute force limited to 24 vertices");
        (0u64..1 << self.n)
            .map(|bits| self.cut_value(bits))
            .max()
            .unwrap_or(0)
    }

    /// Ring graph (cycle) on `n` vertices.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        Graph::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// Complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        Graph::new(n, edges)
    }

    /// Erdős–Rényi `G(n, p)` graph, seeded.
    pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if rng.gen::<f64>() < p {
                    edges.push((i, j));
                }
            }
        }
        Graph::new(n, edges)
    }

    /// Random `d`-regular graph via the configuration (pairing) model with
    /// rejection of loops and multi-edges, seeded. Requires `n * d` even and
    /// `d < n`.
    ///
    /// # Panics
    /// Panics on infeasible `(n, d)` or if no simple pairing is found after
    /// many attempts (practically impossible for the sizes used here).
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Self {
        assert!(d < n, "degree must be below vertex count");
        assert!((n * d).is_multiple_of(2), "n*d must be even");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        'attempt: for _ in 0..10_000 {
            let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
            stubs.shuffle(&mut rng);
            let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
            for pair in stubs.chunks_exact(2) {
                let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if a == b || edges.contains(&(a, b)) {
                    continue 'attempt;
                }
                edges.push((a, b));
            }
            return Graph::new(n, edges);
        }
        panic!("failed to sample a simple {d}-regular graph on {n} vertices");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_properties() {
        let g = Graph::cycle(6);
        assert_eq!(g.m(), 6);
        assert!(g.degrees().iter().all(|&d| d == 2));
        // Even cycles are bipartite: max cut = n.
        assert_eq!(g.max_cut_bruteforce(), 6);
        // Odd cycles lose one edge.
        assert_eq!(Graph::cycle(5).max_cut_bruteforce(), 4);
    }

    #[test]
    fn complete_graph_edges() {
        let g = Graph::complete(5);
        assert_eq!(g.m(), 10);
        // K_n max cut = floor(n/2)*ceil(n/2)
        assert_eq!(g.max_cut_bruteforce(), 6);
    }

    #[test]
    fn cut_value_counts_crossings() {
        let g = Graph::new(4, [(0, 1), (1, 2), (2, 3)]);
        // partition {0,2} vs {1,3}: all three edges cross
        assert_eq!(g.cut_value(0b0101), 3);
        assert_eq!(g.cut_value(0b0000), 0);
    }

    #[test]
    fn regular_graph_is_regular_and_deterministic() {
        let g1 = Graph::random_regular(12, 3, 7);
        let g2 = Graph::random_regular(12, 3, 7);
        assert_eq!(g1, g2, "same seed must give same graph");
        assert!(g1.degrees().iter().all(|&d| d == 3));
        assert_eq!(g1.m(), 18);
        let g3 = Graph::random_regular(12, 3, 8);
        assert_ne!(g1, g3, "different seed should (overwhelmingly) differ");
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(Graph::erdos_renyi(8, 0.0, 1).m(), 0);
        assert_eq!(Graph::erdos_renyi(8, 1.0, 1).m(), 28);
    }

    #[test]
    fn new_dedups_and_normalizes() {
        let g = Graph::new(3, [(2, 0), (0, 2), (1, 2)]);
        assert_eq!(g.edges(), &[(0, 2), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Graph::new(3, [(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Graph::new(3, [(0, 3)]);
    }
}
