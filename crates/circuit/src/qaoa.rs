//! QAOA MaxCut ansatz construction.
//!
//! The workload of the paper: QTensor's flagship application is computing
//! QAOA energies on MaxCut instances. Conventions follow Farhi et al.:
//! `|ψ(γ,β)⟩ = U_B(β_p) U_C(γ_p) … U_B(β_1) U_C(γ_1) |+⟩^n` with
//! `U_C(γ) = e^{-iγC}`, `C = Σ_{(i,j)∈E} (1 - Z_i Z_j)/2`, and
//! `U_B(β) = Π_q e^{-iβ X_q}`. Global phases are dropped (they cancel in
//! every expectation value).

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::graph::Graph;

/// Variational parameters for a depth-`p` QAOA ansatz.
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaParams {
    /// Cost-layer angles, one per level.
    pub gammas: Vec<f64>,
    /// Mixer-layer angles, one per level.
    pub betas: Vec<f64>,
}

impl QaoaParams {
    /// Creates parameters, checking both lists have the same length.
    pub fn new(gammas: Vec<f64>, betas: Vec<f64>) -> Self {
        assert_eq!(gammas.len(), betas.len(), "need one beta per gamma");
        assert!(!gammas.is_empty(), "QAOA depth must be at least 1");
        QaoaParams { gammas, betas }
    }

    /// Ansatz depth `p`.
    pub fn depth(&self) -> usize {
        self.gammas.len()
    }

    /// Literature fixed angles for `p = 1` on 3-regular graphs
    /// (γ ≈ 0.616, β ≈ 0.393 maximizes the expected cut).
    pub fn fixed_angles_3reg_p1() -> Self {
        QaoaParams::new(vec![0.616], vec![0.393])
    }

    /// Literature fixed angles for `p = 2` on 3-regular graphs
    /// (Wurtz & Love, "fixed angle conjecture" values).
    pub fn fixed_angles_3reg_p2() -> Self {
        QaoaParams::new(vec![0.488, 0.898], vec![0.555, 0.293])
    }
}

/// Builds the QAOA MaxCut circuit for `graph` with the given parameters.
///
/// Layout per level: one fully-diagonal `ZZ` gate per edge, then one `RX`
/// mixer per qubit. The heavy use of diagonal gates is exactly what makes
/// QTensor's rank-reduced tensor networks (and hence this paper's tensors)
/// tractable.
pub fn qaoa_circuit(graph: &Graph, params: &QaoaParams) -> Circuit {
    let mut c = Circuit::new(graph.n());
    for q in 0..graph.n() {
        c.push(Gate::H(q));
    }
    for (&gamma, &beta) in params.gammas.iter().zip(&params.betas) {
        // e^{-iγ(1 - Z_i Z_j)/2} = phase · e^{+iγ Z_i Z_j / 2} = Zz(i, j, -γ)
        for &(i, j) in graph.edges() {
            c.push(Gate::Zz(i, j, -gamma));
        }
        // e^{-iβX} = Rx(2β)
        for q in 0..graph.n() {
            c.push(Gate::Rx(q, 2.0 * beta));
        }
    }
    c
}

/// MaxCut cost observable value for one computational basis state.
pub fn cut_cost(graph: &Graph, bits: u64) -> f64 {
    graph.cut_value(bits) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validate() {
        let p = QaoaParams::new(vec![0.1, 0.2], vec![0.3, 0.4]);
        assert_eq!(p.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "one beta per gamma")]
    fn mismatched_params_panic() {
        QaoaParams::new(vec![0.1], vec![]);
    }

    #[test]
    fn circuit_shape() {
        let g = Graph::cycle(4);
        let c = qaoa_circuit(&g, &QaoaParams::new(vec![0.5], vec![0.25]));
        // 4 H + 4 ZZ + 4 RX
        assert_eq!(c.len(), 12);
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.diagonal_gate_count(), 4); // the ZZ gates
        let c2 = qaoa_circuit(&g, &QaoaParams::new(vec![0.5, 0.1], vec![0.25, 0.3]));
        assert_eq!(c2.len(), 4 + 2 * 8);
    }

    #[test]
    fn gate_parameters_follow_convention() {
        let g = Graph::new(2, [(0, 1)]);
        let c = qaoa_circuit(&g, &QaoaParams::new(vec![0.7], vec![0.2]));
        assert_eq!(c.gates()[2], Gate::Zz(0, 1, -0.7));
        assert_eq!(c.gates()[3], Gate::Rx(0, 0.4));
    }
}
