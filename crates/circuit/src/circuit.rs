//! Circuits: ordered gate lists over a fixed qubit register.

use crate::gate::Gate;
use std::fmt;

/// A quantum circuit: `n_qubits` wires and an ordered list of gates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit over `n_qubits` wires.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of wires.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Gates in application order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when no gates have been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate, validating its qubit indices.
    ///
    /// # Panics
    /// Panics when a qubit index is out of range or a multi-qubit gate
    /// repeats a qubit.
    pub fn push(&mut self, gate: Gate) {
        let qs = gate.qubits();
        for (i, &q) in qs.iter().enumerate() {
            assert!(
                q < self.n_qubits,
                "gate {} touches qubit {q} >= {}",
                gate.name(),
                self.n_qubits
            );
            assert!(
                !qs[..i].contains(&q),
                "gate {} repeats qubit {q}",
                gate.name()
            );
        }
        self.gates.push(gate);
    }

    /// Builder-style [`Circuit::push`].
    pub fn with(mut self, gate: Gate) -> Self {
        self.push(gate);
        self
    }

    /// Appends all gates of `other` (same register width required).
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(self.n_qubits, other.n_qubits, "register width mismatch");
        self.gates.extend_from_slice(&other.gates);
    }

    /// The adjoint circuit: daggered gates in reverse order.
    pub fn dagger(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(Gate::dagger).collect(),
        }
    }

    /// Count of gates that are diagonal in all their qubits.
    pub fn diagonal_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_diagonal()).count()
    }

    /// Count of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.arity() == 2).count()
    }

    /// Circuit depth: length of the longest chain of gates sharing qubits,
    /// computed greedily layer by layer.
    pub fn depth(&self) -> usize {
        let mut busy_until = vec![0usize; self.n_qubits];
        let mut depth = 0usize;
        for g in &self.gates {
            let start = g.qubits().iter().map(|&q| busy_until[q]).max().unwrap_or(0);
            let end = start + 1;
            for q in g.qubits() {
                busy_until[q] = end;
            }
            depth = depth.max(end);
        }
        depth
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit({} qubits, {} gates):",
            self.n_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {} {:?}", g.name(), g.qubits())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "qubit 2")]
    fn push_rejects_out_of_range() {
        Circuit::new(2).push(Gate::H(2));
    }

    #[test]
    #[should_panic(expected = "repeats qubit")]
    fn push_rejects_repeated_qubit() {
        Circuit::new(2).push(Gate::Cnot(1, 1));
    }

    #[test]
    fn dagger_reverses() {
        let c = Circuit::new(2).with(Gate::H(0)).with(Gate::Rz(1, 0.5));
        let d = c.dagger();
        assert_eq!(d.gates()[0], Gate::Rz(1, -0.5));
        assert_eq!(d.gates()[1], Gate::H(0));
    }

    #[test]
    fn depth_counts_layers() {
        // H(0) and H(1) are parallel; CNOT then serializes.
        let c = Circuit::new(2)
            .with(Gate::H(0))
            .with(Gate::H(1))
            .with(Gate::Cnot(0, 1))
            .with(Gate::H(0));
        assert_eq!(c.depth(), 3);
        assert_eq!(Circuit::new(3).depth(), 0);
    }

    #[test]
    fn gate_class_counts() {
        let c = Circuit::new(3)
            .with(Gate::H(0))
            .with(Gate::Zz(0, 1, 0.3))
            .with(Gate::Cz(1, 2))
            .with(Gate::Rx(2, 0.1));
        assert_eq!(c.diagonal_gate_count(), 2);
        assert_eq!(c.two_qubit_gate_count(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut a = Circuit::new(2).with(Gate::H(0));
        let b = Circuit::new(2).with(Gate::X(1));
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }
}
