//! Ledger invariants under arbitrary circuits and cache capacities.
//!
//! The error-budget ledger promises exact requant accounting: under a lossy
//! codec every dirty-chunk write-back (eviction, flush, or cache-disabled
//! per-gate recompression) increments exactly one chunk's requant count —
//! so the per-chunk counts always sum to `stats.recompressions` — and under
//! a lossless codec every estimate stays identically zero no matter how the
//! cache thrashes.

use compressors::cuszx::CuSzx;
use compressors::dummy::Memcpy;
use compressors::ErrorBound;
use proptest::prelude::*;
use qcircuit::Gate;
use qtensor::CompressedState;

/// Random gates over an `n`-qubit register, mixing low (intra-chunk) and
/// high (grouped, cross-chunk) qubits.
fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    let pair = move |s: (usize, usize)| (s.0, (s.0 + s.1) % n);
    prop_oneof![
        (0..n).prop_map(Gate::H),
        (0..n, -3.0f64..3.0).prop_map(|(q, th)| Gate::Rx(q, th)),
        (0..n, -3.0f64..3.0).prop_map(|(q, th)| Gate::Ry(q, th)),
        (0..n).prop_map(Gate::T),
        (0..n, 1..n, -3.0f64..3.0).prop_map(move |(a, off, th)| {
            let (a, b) = pair((a, off));
            Gate::Zz(a, b, th)
        }),
        (0..n, 1..n).prop_map(move |(a, off)| {
            let (a, b) = pair((a, off));
            Gate::Cnot(a, b)
        }),
        (0..n, 1..n).prop_map(move |(a, off)| {
            let (a, b) = pair((a, off));
            Gate::Swap(a, b)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn lossy_requants_sum_to_recompressions(
        gates in prop::collection::vec(gate_strategy(7), 1..24),
        chunk in 3usize..6,
    ) {
        let comp = CuSzx::default();
        for cap in [0usize, 1, 8] {
            let mut cs =
                CompressedState::zero(7, chunk, &comp, ErrorBound::Abs(1e-8)).unwrap();
            cs.set_cache_capacity(cap).unwrap();
            for g in &gates {
                cs.apply(g).unwrap();
            }
            cs.flush().unwrap();
            let s = cs.ledger_summary();
            // Exactness: every write-back (eviction, flush, cap-0 per-gate
            // recompression) incremented exactly one chunk's requant count.
            prop_assert_eq!(
                s.total_requants, cs.stats.recompressions,
                "cap {}: ledger requants must equal recompressions", cap
            );
            prop_assert!(s.max_requants <= s.total_requants);
            // Each chunk was quantized at least at state preparation.
            prop_assert_eq!(s.chunks, 1usize << (7 - chunk));
            prop_assert!(cs.ledger().lossy_events() >= s.chunks as u64);
            prop_assert!(s.lossy);
            // Accumulated bounds are positive and monotone with events.
            prop_assert!(s.max_accumulated_bound > 0.0);
            prop_assert!(s.accumulated_rss >= s.max_accumulated_bound);
            // With the cache disabled every gate-touch recompresses, so a
            // 1-slot or 8-slot cache can only requant less.
            if cap > 0 {
                let mut cs0 =
                    CompressedState::zero(7, chunk, &comp, ErrorBound::Abs(1e-8)).unwrap();
                cs0.set_cache_capacity(0).unwrap();
                for g in &gates {
                    cs0.apply(g).unwrap();
                }
                cs0.flush().unwrap();
                prop_assert!(
                    s.total_requants <= cs0.ledger_summary().total_requants,
                    "cap {} must not requant more than cap 0", cap
                );
            }
        }
    }

    #[test]
    fn lossless_codec_keeps_ledger_at_zero(
        gates in prop::collection::vec(gate_strategy(7), 1..24),
        chunk in 3usize..6,
    ) {
        let comp = Memcpy;
        for cap in [0usize, 1, 8] {
            let mut cs =
                CompressedState::zero(7, chunk, &comp, ErrorBound::Abs(1e-8)).unwrap();
            cs.set_cache_capacity(cap).unwrap();
            for g in &gates {
                cs.apply(g).unwrap();
            }
            cs.flush().unwrap();
            let s = cs.ledger_summary();
            prop_assert_eq!(s.total_requants, 0u64, "cap {}", cap);
            prop_assert_eq!(s.max_requants, 0u64);
            prop_assert_eq!(s.max_accumulated_bound, 0.0);
            prop_assert_eq!(s.accumulated_rss, 0.0);
            prop_assert_eq!(s.max_measured_err, 0.0);
            prop_assert!(!s.lossy);
            // Write-backs still happened and were counted as encodes.
            prop_assert_eq!(
                s.total_encodes,
                (1u64 << (7 - chunk)) + cs.stats.recompressions
            );
        }
    }
}
