//! Chaos suite: full QAOA compressed-state runs under deterministic
//! injected faults (`qcf_telemetry::faults`).
//!
//! Every test arms the process-global fault plan, so all of them serialize
//! through `chaos_guard` and disarm before asserting. The dense reference
//! is always computed *before* arming — the oracle must not be chaosed.
//!
//! What the suite pins down, per the fault model:
//!
//! * the run **completes** (degraded, never dead) under every fault kind;
//! * `state.faults.*` accounting is exact against `faults::injected_count`;
//! * `verify()` detects 100% of injected storage corruptions;
//! * energy drift stays within the quarantine-adjusted bound.

use compressors::dummy::Memcpy;
use compressors::{Compressor, ErrorBound};
use qcf_telemetry::faults;
use qcircuit::{qaoa_circuit, Circuit, Graph, QaoaParams};
use qtensor::{CompressedState, StateVector};

fn qaoa(n: usize, seed: u64) -> (Circuit, Graph) {
    let g = Graph::random_regular(n, 3, seed);
    let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
    (c, g)
}

/// Runs `circuit` on a fresh compressed state with a small cache; every
/// gate must succeed (degraded is fine, dead is not).
fn run_chaos<'a>(
    circuit: &Circuit,
    cache: usize,
    comp: &'a dyn Compressor,
    bound: ErrorBound,
) -> CompressedState<'a> {
    let mut cs = CompressedState::zero(circuit.n_qubits(), 3, comp, bound).expect("zero state");
    cs.set_cache_capacity(cache).expect("cache resize");
    for g in circuit.gates() {
        cs.apply(g)
            .expect("chaos run must complete degraded, not die");
    }
    cs
}

#[test]
fn injected_decode_error_heals_by_retry() {
    let _g = faults::chaos_guard();
    let (circuit, graph) = qaoa(8, 3);
    let dense = StateVector::run(&circuit);
    let reference = dense.maxcut_energy(&graph);

    faults::arm_from_spec("seed=7,codec.decode@5").unwrap();
    let comp = Memcpy;
    let mut cs = run_chaos(&circuit, 2, &comp, ErrorBound::Abs(0.0));
    cs.flush().unwrap();
    let injected = faults::injected_count("codec.decode");
    faults::disarm();

    assert_eq!(injected, 1, "@5 fires exactly once");
    // A transient decode error heals on the immediate retry: no data was
    // lost, nothing was quarantined, and the state is bit-exact.
    assert_eq!(cs.faults.decode_errors, 1);
    assert_eq!(cs.faults.retries_ok, 1);
    assert_eq!(cs.faults.quarantines, 0);
    assert!(!cs.degraded());
    let e = cs.maxcut_energy(&graph).unwrap();
    assert!(
        (e - reference).abs() < 1e-10,
        "lossless run drifted: {e} vs {reference}"
    );
}

#[test]
fn bitflip_is_detected_and_recovered() {
    let _g = faults::chaos_guard();
    let (circuit, graph) = qaoa(8, 5);
    let dense = StateVector::run(&circuit);
    let reference = dense.maxcut_energy(&graph);

    faults::arm_from_spec("seed=11,state.chunk.bitflip@2").unwrap();
    let comp = Memcpy;
    let mut cs = run_chaos(&circuit, 2, &comp, ErrorBound::Abs(0.0));
    cs.flush().unwrap();
    let report = cs.verify().unwrap();
    let injected = faults::injected_count("state.chunk.bitflip");
    faults::disarm();

    assert_eq!(injected, 1, "@2 fires exactly once");
    // The flipped bit is persistent corruption: the integrity frame must
    // flag it (during the run or in the scrub), and recovery is either a
    // cache repair (amplitudes still resident) or a quarantine — never a
    // silent pass.
    assert!(cs.faults.decode_errors >= 1, "corruption went undetected");
    assert_eq!(
        cs.faults.retries_ok, 0,
        "persistent corruption must not pass a retry"
    );
    let recovered = cs.faults.cache_repairs + cs.faults.quarantines;
    assert_eq!(recovered, 1, "exactly the one corrupted chunk recovers");
    // After the scrub the state is internally consistent again.
    assert!(cs.verify().unwrap().all_clean());
    let _ = report;
    // Quarantine-adjusted energy bound: each lost unit of squared norm can
    // move each edge term by at most that much (|zz| ≤ norm²), plus slack.
    let e = cs.maxcut_energy(&graph).unwrap();
    let bound = graph.edges().len() as f64 * cs.faults.lost_norm_sq + 1e-10;
    assert!(
        (e - reference).abs() <= bound,
        "energy drift {} exceeds quarantine-adjusted bound {bound}",
        (e - reference).abs()
    );
}

#[test]
fn worker_panic_fails_the_chunk_not_the_process() {
    let _g = faults::chaos_guard();
    let (circuit, graph) = qaoa(8, 9);
    let dense = StateVector::run(&circuit);
    let reference = dense.maxcut_energy(&graph);

    // Worker-block events fire inside the data-parallel executor, so use a
    // codec whose kernels actually run through it (cuSZx quantization).
    faults::arm_from_spec("seed=3,exec.worker.panic@5").unwrap();
    let comp = compressors::cuszx::CuSzx::default();
    let mut cs = run_chaos(&circuit, 2, &comp, ErrorBound::Abs(1e-7));
    cs.flush().unwrap();
    let injected = faults::injected_count("exec.worker.panic");
    faults::disarm();

    assert_eq!(injected, 1, "@5 fires exactly once");
    assert_eq!(
        cs.faults.worker_panics, 1,
        "the panic was converted, not escaped"
    );
    // The panic either hit a codec kernel (healed by retry) or a gate
    // kernel (chunk quarantined); both leave the run alive.
    assert_eq!(cs.faults.retries_ok + cs.faults.quarantines, 1);
    assert!(cs.verify().unwrap().ledger_breaches == 0);
    let e = cs.maxcut_energy(&graph).unwrap();
    // Quarantine loss plus ordinary lossy-codec drift at this tight bound.
    let bound = graph.edges().len() as f64 * cs.faults.lost_norm_sq + 0.01 * reference.abs();
    assert!(
        (e - reference).abs() <= bound,
        "energy drift {} exceeds bound {bound}",
        (e - reference).abs()
    );
}

#[test]
fn sustained_fault_storm_completes_with_exact_accounting() {
    let _g = faults::chaos_guard();
    let (circuit, graph) = qaoa(8, 13);
    let dense = StateVector::run(&circuit);
    let reference = dense.maxcut_energy(&graph);

    faults::arm_from_spec("seed=42,state.chunk.bitflip%0.05,codec.decode%0.02").unwrap();
    let comp = Memcpy;
    let mut cs = run_chaos(&circuit, 2, &comp, ErrorBound::Abs(0.0));
    cs.flush().unwrap();
    // Scrub until clean: each pass heals or quarantines what it finds (a
    // scrub's own write-backs can be re-corrupted while faults are armed).
    for _ in 0..20 {
        if cs.verify().unwrap().all_clean() {
            break;
        }
    }
    let flips = faults::injected_count("state.chunk.bitflip");
    let decode_faults = faults::injected_count("codec.decode");
    faults::disarm();
    assert!(cs.verify().unwrap().all_clean(), "storm never settled");

    assert!(flips > 0, "5% over hundreds of write-backs must fire");
    // Exact accounting: every observed decode failure traces back to an
    // injected fault, and every injected decode error is observed (each
    // fires an error the moment that chunk is next decoded; bit flips may
    // additionally surface as extra checksum failures).
    assert!(
        cs.faults.decode_errors >= decode_faults,
        "decode errors {} < injected decode faults {decode_faults}",
        cs.faults.decode_errors
    );
    // Every failure was absorbed by exactly one recovery outcome. Persistent
    // corruption retries once (failing) before repair/quarantine, and a
    // retry of an injected decode error can itself draw a new injected
    // error, so outcomes ≤ errors ≤ injected + retries.
    let outcomes = cs.faults.retries_ok + cs.faults.cache_repairs + cs.faults.quarantines;
    assert!(outcomes > 0);
    assert!(
        outcomes <= cs.faults.decode_errors,
        "more recoveries than failures"
    );
    // Degraded, not wrong: energy within the quarantine-adjusted bound.
    let e = cs.maxcut_energy(&graph).unwrap();
    let bound = graph.edges().len() as f64 * cs.faults.lost_norm_sq + 1e-10;
    assert!(
        (e - reference).abs() <= bound,
        "energy drift {} exceeds quarantine-adjusted bound {bound} \
         (lost norm² {})",
        (e - reference).abs(),
        cs.faults.lost_norm_sq
    );
    let s = cs.ledger_summary();
    assert_eq!(
        s.total_quarantines, cs.faults.quarantines,
        "ledger and fault stats must agree on quarantines"
    );
}

#[test]
fn spilled_frame_bitflip_is_detected_at_fetch() {
    let _g = faults::chaos_guard();
    let (circuit, graph) = qaoa(8, 21);
    let dense = StateVector::run(&circuit);
    let reference = dense.maxcut_energy(&graph);

    faults::arm_from_spec("seed=29,state.spill.bitflip@3").unwrap();
    let comp = Memcpy;
    let mut cs = CompressedState::zero(8, 3, &comp, ErrorBound::Abs(0.0)).expect("zero state");
    cs.set_cache_capacity(2).expect("cache resize");
    cs.set_mem_budget(Some(0)); // all-spill: every write-back hits disk
    for g in circuit.gates() {
        cs.apply(g)
            .expect("chaos run must complete degraded, not die");
    }
    cs.flush().unwrap();
    // The scrub fetches every spilled frame through the normal recovery
    // chain — the disk tier is covered by exactly the same code path.
    let first = cs.verify().unwrap();
    let injected = faults::injected_count("state.spill.bitflip");
    faults::disarm();
    // Scrub once more disarmed: verify()'s own re-tiering spills again,
    // which while armed could inject fresh flips.
    for _ in 0..5 {
        if cs.verify().unwrap().all_clean() {
            break;
        }
    }

    assert!(injected >= 1, "@3 must fire");
    assert!(cs.stats.spills >= 3, "all-spill run spilled plenty");
    assert!(cs.stats.fetches > 0);
    // On-disk corruption is persistent and the chunk is by construction
    // not cache-resident (spilled ⇒ evicted), so the only recovery is
    // quarantine — exactly one per flipped record, never a silent pass.
    assert!(cs.faults.decode_errors >= injected, "flip went undetected");
    assert_eq!(cs.faults.cache_repairs, 0, "spilled chunks are uncached");
    assert_eq!(
        cs.faults.quarantines, cs.faults.decode_errors,
        "each corrupted record quarantines exactly once"
    );
    assert!(cs.verify().unwrap().all_clean(), "scrub never settled");
    let _ = first;
    let e = cs.maxcut_energy(&graph).unwrap();
    let bound = graph.edges().len() as f64 * cs.faults.lost_norm_sq + 1e-10;
    assert!(
        (e - reference).abs() <= bound,
        "energy drift {} exceeds quarantine-adjusted bound {bound}",
        (e - reference).abs()
    );
}

#[test]
fn spill_fault_storm_completes_with_exact_accounting() {
    let _g = faults::chaos_guard();
    let (circuit, graph) = qaoa(8, 25);
    let dense = StateVector::run(&circuit);
    let reference = dense.maxcut_energy(&graph);

    // Only the spill site armed: every decode error must trace back to a
    // flipped on-disk record, making the accounting exactly closed.
    faults::arm_from_spec("seed=57,state.spill.bitflip%0.05").unwrap();
    let comp = Memcpy;
    let mut cs = CompressedState::zero(8, 3, &comp, ErrorBound::Abs(0.0)).expect("zero state");
    cs.set_cache_capacity(2).expect("cache resize");
    cs.set_mem_budget(Some(0));
    for g in circuit.gates() {
        cs.apply(g)
            .expect("chaos run must complete degraded, not die");
    }
    cs.flush().unwrap();
    let flips = faults::injected_count("state.spill.bitflip");
    faults::disarm();
    // Disarmed scrub (injects nothing more): fetches every remaining —
    // possibly corrupt — record exactly once.
    for _ in 0..5 {
        if cs.verify().unwrap().all_clean() {
            break;
        }
    }

    assert!(flips > 0, "5% over hundreds of spills must fire");
    // Exact accounting: every *fetched* corrupt record fails its frame
    // checksum exactly once and — uncached by construction — quarantines
    // exactly once. Flips can exceed detections only via records that a
    // fresh write-back superseded before any fetch: corruption of
    // already-dead bytes, which by definition can never reach the state.
    assert!(cs.faults.decode_errors > 0, "no corruption detected");
    assert!(
        cs.faults.decode_errors <= flips,
        "more detections than injected flips"
    );
    assert_eq!(
        cs.faults.retries_ok, 0,
        "persistent corruption never retries clean"
    );
    assert_eq!(cs.faults.cache_repairs, 0);
    assert_eq!(cs.faults.quarantines, cs.faults.decode_errors);
    assert!(cs.verify().unwrap().all_clean(), "storm never settled");
    let s = cs.ledger_summary();
    assert_eq!(s.total_quarantines, cs.faults.quarantines);
    let e = cs.maxcut_energy(&graph).unwrap();
    let bound = graph.edges().len() as f64 * cs.faults.lost_norm_sq + 1e-10;
    assert!(
        (e - reference).abs() <= bound,
        "energy drift {} exceeds quarantine-adjusted bound {bound} (lost norm² {})",
        (e - reference).abs(),
        cs.faults.lost_norm_sq
    );
}

#[test]
fn verify_on_a_healthy_state_is_all_clean_and_free() {
    let _g = faults::chaos_guard();
    faults::disarm();
    let (circuit, _) = qaoa(8, 17);
    let comp = Memcpy;
    let mut cs = run_chaos(&circuit, 4, &comp, ErrorBound::Abs(0.0));
    cs.flush().unwrap();
    let report = cs.verify().unwrap();
    assert!(report.all_clean());
    assert_eq!(report.chunks, 32);
    assert_eq!(report.detected(), 0);
    assert_eq!(cs.faults, qtensor::FaultStats::default());
    assert!(!cs.degraded());
}
