//! The point of the prefetch pipeline: disk latency overlaps gate
//! compute instead of serializing with it. With a simulated per-read
//! device latency (the `QCF_SPILL_LATENCY_US` knob, set here
//! programmatically so the test is filesystem-independent), the
//! scheduled async run must be measurably faster than the
//! synchronous-fetch-on-miss run at the same budget — and, of course,
//! bit-identical to it.

use compressors::dummy::Memcpy;
use compressors::ErrorBound;
use qcircuit::{qaoa_circuit, Graph, QaoaParams};
use qtensor::CompressedState;
use std::time::Instant;

const LATENCY_US: u64 = 250;

fn timed_run(prefetch: bool) -> (std::time::Duration, CompressedState<'static>) {
    static MEMCPY: Memcpy = Memcpy;
    let graph = Graph::random_regular(8, 3, 33);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let mut cs = CompressedState::zero(8, 3, &MEMCPY, ErrorBound::Abs(0.0)).unwrap();
    cs.set_cache_capacity(2).unwrap();
    cs.set_mem_budget(Some(0)); // all-spill: every miss pays the device
    cs.set_spill_latency_us(LATENCY_US);
    let t0 = Instant::now();
    cs.run_scheduled(circuit.gates(), prefetch).unwrap();
    (t0.elapsed(), cs)
}

#[test]
fn async_prefetch_beats_synchronous_fetch_on_miss() {
    // Warm-up pass absorbs one-time costs (file creation, allocator).
    let _ = timed_run(false);
    let (sync_wall, sync_cs) = timed_run(false);
    let (async_wall, async_cs) = timed_run(true);

    // Both runs did real disk-tier work at the same budget.
    assert!(sync_cs.stats.fetches > 50, "workload too small to time");
    assert_eq!(
        sync_cs.stats.fetches, async_cs.stats.fetches,
        "same schedule, same fetch count"
    );
    assert_eq!(sync_cs.stats.prefetch_hits, 0, "sync path never prefetches");
    let hits = async_cs.stats.prefetch_hits;
    let misses = async_cs.stats.prefetch_misses;
    assert!(
        hits * 10 >= (hits + misses) * 8,
        "prefetch hit rate below 80%: {hits} hits / {misses} misses"
    );

    // Two I/O workers overlap reads with compute and with each other:
    // ideal async wall ≈ sync/2. Assert a conservative 0.85 to keep the
    // test robust under load.
    assert!(
        async_wall.as_secs_f64() < sync_wall.as_secs_f64() * 0.85,
        "async {async_wall:?} not faster than sync {sync_wall:?}"
    );
    // Stall accounting agrees: the async run blocked for less total time.
    assert!(
        async_cs.stats.prefetch_stall_us < sync_cs.stats.prefetch_stall_us,
        "async stalled {} µs vs sync {} µs",
        async_cs.stats.prefetch_stall_us,
        sync_cs.stats.prefetch_stall_us
    );

    // And identical physics, bit for bit.
    let a = async_cs.to_statevector().unwrap();
    let s = sync_cs.to_statevector().unwrap();
    for (x, y) in a.amplitudes().iter().zip(s.amplitudes()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}
