//! The disk tier is a pure *placement* layer: a memory budget decides
//! where sealed frames live, never what they contain. Any budget — 0
//! (all-spill), tiny (thrashing), or unbounded — must therefore produce
//! bit-identical amplitudes to the in-RAM run, with or without the async
//! prefetch pipeline, under lossless *and* lossy codecs (spill sits
//! below the codec layer, so even requantization sequences are
//! unchanged).

use compressors::dummy::Memcpy;
use compressors::{Compressor, ErrorBound};
use proptest::prelude::*;
use qcircuit::{qaoa_circuit, Gate, Graph, QaoaParams};
use qtensor::CompressedState;

/// Random gates over an `n`-qubit register, mixing low (intra-chunk) and
/// high (grouped, cross-chunk) qubits.
fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    let pair = move |s: (usize, usize)| (s.0, (s.0 + s.1) % n);
    prop_oneof![
        (0..n).prop_map(Gate::H),
        (0..n, -3.0f64..3.0).prop_map(|(q, th)| Gate::Rx(q, th)),
        (0..n, -3.0f64..3.0).prop_map(|(q, th)| Gate::Ry(q, th)),
        (0..n).prop_map(Gate::T),
        (0..n, 1..n, -3.0f64..3.0).prop_map(move |(a, off, th)| {
            let (a, b) = pair((a, off));
            Gate::Zz(a, b, th)
        }),
        (0..n, 1..n).prop_map(move |(a, off)| {
            let (a, b) = pair((a, off));
            Gate::Cnot(a, b)
        }),
        (0..n, 1..n).prop_map(move |(a, off)| {
            let (a, b) = pair((a, off));
            Gate::Swap(a, b)
        }),
    ]
}

fn assert_bits_equal(a: &qtensor::StateVector, b: &qtensor::StateVector, label: &str) {
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{label} diverges");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{label} diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn mem_budget_never_changes_amplitudes(
        gates in prop::collection::vec(gate_strategy(7), 1..20),
        chunk in 3usize..5,
        cache in (0usize..3).prop_map(|i| [0usize, 2, 8][i]),
    ) {
        let comp = Memcpy;
        // Budgets: unbounded (reference), tiny (partial spill, thrash),
        // zero (all-spill). Same cache capacity everywhere so the only
        // variable is frame *placement*.
        let budgets = [None, Some(512usize), Some(0)];
        let mut states: Vec<CompressedState> = budgets
            .iter()
            .map(|&budget| {
                let mut cs =
                    CompressedState::zero(7, chunk, &comp, ErrorBound::Abs(0.0)).unwrap();
                cs.set_cache_capacity(cache).unwrap();
                cs.set_mem_budget(budget);
                cs
            })
            .collect();
        for g in &gates {
            for cs in &mut states {
                cs.apply(g).unwrap();
            }
        }
        // The zero-budget run must actually exercise the disk tier.
        prop_assert!(states[2].stats.spills > 0, "budget 0 never spilled");
        prop_assert!(states[2].stats.fetches > 0, "budget 0 never fetched");
        let reference = states[0].to_statevector().unwrap();
        for (cs, budget) in states.iter_mut().zip(budgets).skip(1) {
            let sv = cs.to_statevector().unwrap();
            for (a, b) in reference.amplitudes().iter().zip(sv.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "budget {:?}", budget);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "budget {:?}", budget);
            }
            // And after a scrub (which fetches + re-tiers everything).
            prop_assert!(cs.verify().unwrap().all_clean());
            let sv = cs.to_statevector().unwrap();
            for (a, b) in reference.amplitudes().iter().zip(sv.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "post-verify {:?}", budget);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "post-verify {:?}", budget);
            }
        }
    }

    #[test]
    fn prefetched_scheduled_run_is_bit_identical_to_plain_apply(
        gates in prop::collection::vec(gate_strategy(7), 1..20),
        chunk in 3usize..5,
    ) {
        let comp = Memcpy;
        // Reference: plain apply loop, no budget.
        let mut reference =
            CompressedState::zero(7, chunk, &comp, ErrorBound::Abs(0.0)).unwrap();
        for g in &gates {
            reference.apply(g).unwrap();
        }
        let reference = reference.to_statevector().unwrap();
        // Async prefetch at budget 0 vs synchronous-fetch-on-miss at
        // budget 0: both must match the in-RAM run bit for bit.
        for prefetch in [true, false] {
            let mut cs =
                CompressedState::zero(7, chunk, &comp, ErrorBound::Abs(0.0)).unwrap();
            cs.set_mem_budget(Some(0));
            cs.run_scheduled(&gates, prefetch).unwrap();
            prop_assert!(cs.stats.fetches > 0);
            let sv = cs.to_statevector().unwrap();
            for (a, b) in reference.amplitudes().iter().zip(sv.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "prefetch={}", prefetch);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "prefetch={}", prefetch);
            }
        }
    }
}

/// Full QAOA run: every budget (and the prefetched path) lands on the
/// same bits as the unbounded run, for a lossless *and* a lossy codec.
#[test]
fn full_qaoa_is_bit_identical_across_budgets() {
    let graph = Graph::random_regular(10, 3, 21);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let lossless = Memcpy;
    let lossy = compressors::cuszx::CuSzx::default();
    let codecs: [(&dyn Compressor, ErrorBound, &str); 2] = [
        (&lossless, ErrorBound::Abs(0.0), "memcpy"),
        (&lossy, ErrorBound::Abs(1e-7), "cuszx"),
    ];
    for (comp, bound, name) in codecs {
        let run = |budget: Option<usize>, prefetch: bool| {
            let mut cs = CompressedState::zero(10, 5, comp, bound).unwrap();
            cs.set_mem_budget(budget);
            cs.run_scheduled(circuit.gates(), prefetch).unwrap();
            cs
        };
        let reference = run(None, false);
        let ref_sv = reference.to_statevector().unwrap();
        for (budget, prefetch) in [(Some(0), false), (Some(0), true), (Some(1024), true)] {
            let cs = run(budget, prefetch);
            assert!(
                cs.stats.spills > 0,
                "{name}: budget {budget:?} exercised no spills"
            );
            let sv = cs.to_statevector().unwrap();
            assert_bits_equal(
                &ref_sv,
                &sv,
                &format!("{name} budget={budget:?} prefetch={prefetch}"),
            );
            // Energy read through the disk tier in place (&self scan).
            let e_ref = reference.maxcut_energy(&graph).unwrap();
            let e = cs.maxcut_energy(&graph).unwrap();
            assert_eq!(e_ref.to_bits(), e.to_bits(), "{name}: energy diverges");
        }
    }
}

/// Prefetch hit/miss counts are functions of the deterministic touch
/// schedule, not of I/O timing: two identical runs agree exactly.
#[test]
fn prefetch_accounting_is_deterministic() {
    let graph = Graph::random_regular(8, 3, 5);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let comp = Memcpy;
    let run = || {
        let mut cs = CompressedState::zero(8, 3, &comp, ErrorBound::Abs(0.0)).unwrap();
        cs.set_mem_budget(Some(0));
        cs.run_scheduled(circuit.gates(), true).unwrap();
        (
            cs.stats.prefetch_hits,
            cs.stats.prefetch_misses,
            cs.stats.spills,
            cs.stats.fetches,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "prefetch accounting must be timing-independent");
    assert!(a.0 > 0, "scheduled run should score prefetch hits");
    assert_eq!(a.0 + a.1, a.3, "every fetch is a hit or a miss");
}
