//! Journal coverage of the disk tier: every spill and fetch shows up in
//! the per-chunk causal chain (`qcfz state --chunk <id>` renders it),
//! and the journal-vs-ledger verdict — requant and quarantine counts
//! matching exactly — still holds on a heavily spilled run.
//!
//! Own integration-test binary for the same reason as
//! `journal_consistency.rs`: the journal is process-global.

use compressors::cuszx::CuSzx;
use compressors::ErrorBound;
use qcf_telemetry::journal::{self, EventKind};
use qcircuit::{qaoa_circuit, Graph, QaoaParams};
use qtensor::CompressedState;

#[test]
fn spill_and_fetch_events_join_the_causal_chain() {
    qcf_telemetry::set_enabled(true);
    journal::set_enabled(true);
    journal::reset();

    let n = 10usize;
    let chunk_qubits = 5usize;
    let graph = Graph::random_regular(n, 3, 7);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let comp = CuSzx::default();
    let mut cs = CompressedState::zero(n, chunk_qubits, &comp, ErrorBound::Abs(1e-7)).unwrap();
    cs.set_mem_budget(Some(0)); // all-spill
    cs.run_scheduled(circuit.gates(), true).unwrap();
    cs.flush().unwrap();

    let n_chunks = 1usize << (n - chunk_qubits);
    let mut spill_events = 0u64;
    let mut fetch_events = 0u64;
    for id in 0..n_chunks {
        let counts = journal::kind_counts(id as u64);
        let rec = cs.ledger().chunk(id);
        // The spill tier must not disturb the established verdict: the
        // journal still explains the ledger exactly.
        assert_eq!(
            counts[EventKind::WritebackRequant.index()],
            rec.requants,
            "chunk {id}: journal requants vs ledger"
        );
        assert_eq!(
            counts[EventKind::Quarantine.index()],
            rec.quarantines,
            "chunk {id}: journal quarantines vs ledger"
        );
        // Every chunk of an all-spill run was spilled and fetched.
        assert!(
            counts[EventKind::Spill.index()] > 0,
            "chunk {id}: no spill event at budget 0"
        );
        assert!(
            counts[EventKind::Fetch.index()] > 0,
            "chunk {id}: no fetch event at budget 0"
        );
        spill_events += counts[EventKind::Spill.index()];
        fetch_events += counts[EventKind::Fetch.index()];
    }
    // Journal totals equal the exact run stats.
    assert_eq!(spill_events, cs.stats.spills, "journal spills vs stats");
    assert_eq!(fetch_events, cs.stats.fetches, "journal fetches vs stats");

    journal::set_enabled(false);
}
