//! A checkpoint is a *pause*, never a perturbation: resuming a snapshot
//! and finishing the run must produce bit-identical amplitudes to the
//! run that was never interrupted, with a field-for-field identical
//! error-budget ledger. That must hold across every tier shape (no
//! budget, all-spill, thrashing) and for lossless *and* lossy codecs —
//! the checkpoint barrier (flush + cache drop) makes the durable frames
//! the ground truth both sides continue from, so even a lossy codec's
//! requant schedule replays identically.

use compressors::cuszx::CuSzx;
use compressors::dummy::Memcpy;
use compressors::{Compressor, ErrorBound};
use proptest::prelude::*;
use qcircuit::Gate;
use qtensor::CompressedState;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Random gates over an `n`-qubit register, mixing low (intra-chunk) and
/// high (grouped, cross-chunk) qubits.
fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    let pair = move |s: (usize, usize)| (s.0, (s.0 + s.1) % n);
    prop_oneof![
        (0..n).prop_map(Gate::H),
        (0..n, -3.0f64..3.0).prop_map(|(q, th)| Gate::Rx(q, th)),
        (0..n, -3.0f64..3.0).prop_map(|(q, th)| Gate::Ry(q, th)),
        (0..n).prop_map(Gate::T),
        (0..n, 1..n, -3.0f64..3.0).prop_map(move |(a, off, th)| {
            let (a, b) = pair((a, off));
            Gate::Zz(a, b, th)
        }),
        (0..n, 1..n).prop_map(move |(a, off)| {
            let (a, b) = pair((a, off));
            Gate::Cnot(a, b)
        }),
    ]
}

/// A unique snapshot path per proptest case (cases share one process).
fn snap_path() -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("qcf-ckpt-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "case-{}-{}.qcfs",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn resume_then_finish_is_bit_identical_to_the_uninterrupted_run(
        gates in prop::collection::vec(gate_strategy(6), 2..16),
        split in 0usize..16,
        budget_i in 0usize..3,
        lossy in any::<bool>(),
    ) {
        // Tier shapes: unbounded RAM, thrashing, all-spill.
        let budget = [None, Some(600usize), Some(0)][budget_i];
        let lossless = Memcpy;
        let cuszx = CuSzx::default();
        let (comp, bound): (&dyn Compressor, _) = if lossy {
            (&cuszx, ErrorBound::Abs(1e-7))
        } else {
            (&lossless, ErrorBound::Abs(0.0))
        };
        let k = split.min(gates.len());
        let path = snap_path();

        // Golden: run straight through, checkpointing at gate k without
        // stopping.
        let mut golden = CompressedState::zero(6, 3, comp, bound).unwrap();
        golden.set_mem_budget(budget);
        for g in &gates[..k] {
            golden.apply(g).unwrap();
        }
        golden.checkpoint(&path, b"proptest-meta").unwrap();
        for g in &gates[k..] {
            golden.apply(g).unwrap();
        }
        golden.flush().unwrap();

        // Resumed: a "new process" restores the snapshot and finishes.
        let (mut resumed, meta) = CompressedState::resume(&path, comp).unwrap();
        prop_assert_eq!(meta.as_slice(), b"proptest-meta".as_slice());
        resumed.set_mem_budget(budget);
        for g in &gates[k..] {
            resumed.apply(g).unwrap();
        }
        resumed.flush().unwrap();

        let a = golden.to_statevector().unwrap();
        let b = resumed.to_statevector().unwrap();
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits(), "resume diverged");
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits(), "resume diverged");
        }
        prop_assert_eq!(golden.ledger_summary(), resumed.ledger_summary());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_snapshot_restores_the_exact_state_it_serialized(
        gates in prop::collection::vec(gate_strategy(5), 1..10),
        budget_i in 0usize..2,
    ) {
        let budget = [None, Some(0usize)][budget_i];
        let comp = Memcpy;
        let path = snap_path();
        let mut cs = CompressedState::zero(5, 3, &comp, ErrorBound::Abs(0.0)).unwrap();
        cs.set_mem_budget(budget);
        for g in &gates {
            cs.apply(g).unwrap();
        }
        cs.checkpoint(&path, &[]).unwrap();
        let a = cs.to_statevector().unwrap();
        let (resumed, meta) = CompressedState::resume(&path, &comp).unwrap();
        prop_assert!(meta.is_empty());
        let b = resumed.to_statevector().unwrap();
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits(), "restore diverged");
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits(), "restore diverged");
        }
        prop_assert_eq!(cs.ledger_summary(), resumed.ledger_summary());
        let _ = std::fs::remove_file(&path);
    }
}
