//! Journal ⇄ ledger consistency: the per-chunk causal journal must
//! *explain* the error ledger — for every chunk, the journal's requant and
//! quarantine event counts equal the ledger's, and its zero+encode events
//! equal the ledger's total encodes. This is the contract behind
//! `qcfz state --chunk <id>`: the printed causal chain accounts for every
//! number in the chunk's ledger row.
//!
//! Lives in its own integration-test binary: the journal is process-global
//! and armed for the whole test, so sibling unit tests sharing a process
//! would write foreign events into the same chunk-id rings.

use compressors::cuszx::CuSzx;
use compressors::ErrorBound;
use qcf_telemetry::journal::{self, EventKind};
use qcircuit::{qaoa_circuit, Graph, QaoaParams};
use qtensor::CompressedState;

#[test]
fn journal_event_counts_match_the_ledger() {
    qcf_telemetry::set_enabled(true);
    journal::set_enabled(true);
    journal::reset();

    let n = 10usize;
    let chunk_qubits = 5usize;
    let graph = Graph::random_regular(n, 3, 5);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let comp = CuSzx::default();
    let mut cs =
        CompressedState::run(&circuit, chunk_qubits, &comp, ErrorBound::Abs(1e-7)).unwrap();
    // Flush so every dirty cached chunk's final write-back is journaled too.
    cs.flush().unwrap();

    let n_chunks = 1usize << (n - chunk_qubits);
    let mut total_requants = 0u64;
    for id in 0..n_chunks {
        let counts = journal::kind_counts(id as u64);
        let rec = cs.ledger().chunk(id);
        assert_eq!(
            counts[EventKind::WritebackRequant.index()],
            rec.requants,
            "chunk {id}: journal requant events vs ledger requants"
        );
        assert_eq!(
            counts[EventKind::Quarantine.index()],
            rec.quarantines,
            "chunk {id}: journal quarantine events vs ledger quarantines"
        );
        assert_eq!(
            counts[EventKind::Zero.index()] + counts[EventKind::Encode.index()],
            rec.encodes,
            "chunk {id}: journal zero+encode events vs ledger encodes"
        );
        assert_eq!(counts[EventKind::Zero.index()], 1, "chunk {id}: one birth");
        total_requants += rec.requants;

        // Sequence numbers within a chunk's ring are strictly increasing —
        // the causal order `qcfz state --chunk` prints is well-defined.
        let events = journal::events(id as u64);
        assert!(!events.is_empty(), "chunk {id}: journal ring is empty");
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq, "chunk {id}: seq not monotone");
        }
    }
    // A lossy codec under real gate traffic actually requantized things —
    // the equalities above are not vacuous.
    assert!(total_requants > 0, "expected lossy requants in this run");
    assert_eq!(
        total_requants,
        cs.ledger_summary().total_requants,
        "per-chunk requants must sum to the ledger summary"
    );

    journal::set_enabled(false);
}
