//! The write-back chunk cache is a pure performance layer: under a lossless
//! codec, any cache capacity must produce bit-identical amplitudes — hits
//! mutate resident chunks in place, capacity 0 round-trips every touch, and
//! evictions recompress dirty chunks exactly once.

use compressors::dummy::Memcpy;
use compressors::ErrorBound;
use proptest::prelude::*;
use qcircuit::Gate;
use qtensor::CompressedState;

/// Random gates over an `n`-qubit register, mixing low (intra-chunk) and
/// high (grouped, cross-chunk) qubits.
fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    // Distinct qubit pairs via (base, offset): b = (a + off) mod n, off != 0.
    let pair = move |s: (usize, usize)| (s.0, (s.0 + s.1) % n);
    prop_oneof![
        (0..n).prop_map(Gate::H),
        (0..n, -3.0f64..3.0).prop_map(|(q, th)| Gate::Rx(q, th)),
        (0..n, -3.0f64..3.0).prop_map(|(q, th)| Gate::Ry(q, th)),
        (0..n).prop_map(Gate::T),
        (0..n, 1..n, -3.0f64..3.0).prop_map(move |(a, off, th)| {
            let (a, b) = pair((a, off));
            Gate::Zz(a, b, th)
        }),
        (0..n, 1..n).prop_map(move |(a, off)| {
            let (a, b) = pair((a, off));
            Gate::Cnot(a, b)
        }),
        (0..n, 1..n).prop_map(move |(a, off)| {
            let (a, b) = pair((a, off));
            Gate::Swap(a, b)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn cache_capacity_never_changes_amplitudes(
        gates in prop::collection::vec(gate_strategy(7), 1..24),
        chunk in 3usize..6,
    ) {
        // 7 qubits, chunks of 2^3..2^5 amplitudes => 4..16 chunks; cap 1
        // thrashes, cap 8 mixes hits and evictions, cap 0 disables.
        let comp = Memcpy;
        let mut states: Vec<CompressedState> = [0usize, 1, 8]
            .iter()
            .map(|&cap| {
                let mut cs =
                    CompressedState::zero(7, chunk, &comp, ErrorBound::Abs(1e-9)).unwrap();
                cs.set_cache_capacity(cap).unwrap();
                cs
            })
            .collect();
        for g in &gates {
            for cs in &mut states {
                cs.apply(g).unwrap();
            }
        }
        let reference = states[0].to_statevector().unwrap();
        for (cs, cap) in states.iter_mut().zip([0usize, 1, 8]).skip(1) {
            // Amplitudes must agree bit for bit both through the dirty
            // cache (peek path) and after an explicit flush.
            let sv = cs.to_statevector().unwrap();
            for (a, b) in reference.amplitudes().iter().zip(sv.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "cap {} diverges", cap);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "cap {} diverges", cap);
            }
            cs.flush().unwrap();
            let sv = cs.to_statevector().unwrap();
            for (a, b) in reference.amplitudes().iter().zip(sv.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "cap {} post-flush", cap);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "cap {} post-flush", cap);
            }
        }
    }
}
