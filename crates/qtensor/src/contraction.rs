//! Bucket-elimination contraction with an intermediate-tensor hook.
//!
//! Variables are eliminated in a given order. Each variable owns a *bucket*
//! of tensors; eliminating the variable multiplies its bucket together
//! (elementwise over shared labels) and sums the variable out. Every
//! intermediate produced this way flows through a [`ContractionHook`] — the
//! seam where the paper's framework plugs in: the compression hook replaces
//! each intermediate with its decompressed reconstruction, so contraction
//! proceeds exactly as QTensor does when tensors round-trip through the GPU
//! compressor.

use qcf_telemetry::Gauge;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};
use tensornet::{multiply_keep, Complex64, Ix, Tensor, TensorError};

/// Workspace-wide gauge of bytes of intermediates live across all running
/// contractions (cached handle; per-run peaks come from the local track).
fn live_bytes_gauge() -> &'static Arc<Gauge> {
    static GAUGE: OnceLock<Arc<Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| qcf_telemetry::registry().gauge("contract.live_bytes"))
}

/// Errors from network contraction.
#[derive(Debug)]
pub enum ContractError {
    /// Underlying tensor algebra failed (shape/label conflicts).
    Tensor(TensorError),
    /// The elimination order is missing a variable present in the network.
    IncompleteOrder(Ix),
    /// A hook failed (e.g. compressed stream corruption).
    Hook(String),
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::Tensor(e) => write!(f, "tensor error: {e}"),
            ContractError::IncompleteOrder(v) => {
                write!(f, "elimination order missing variable {v}")
            }
            ContractError::Hook(msg) => write!(f, "hook error: {msg}"),
        }
    }
}

impl std::error::Error for ContractError {}

impl From<TensorError> for ContractError {
    fn from(e: TensorError) -> Self {
        ContractError::Tensor(e)
    }
}

/// Observer/transformer of every intermediate tensor the contractor makes.
pub trait ContractionHook {
    /// Called with each freshly produced intermediate; the returned tensor
    /// replaces it (identity for observers, lossy reconstruction for
    /// compression).
    fn on_intermediate(&mut self, tensor: Tensor) -> Result<Tensor, ContractError>;
}

/// The do-nothing hook: exact contraction.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;

impl ContractionHook for NoopHook {
    #[inline]
    fn on_intermediate(&mut self, tensor: Tensor) -> Result<Tensor, ContractError> {
        Ok(tensor)
    }
}

/// Statistics from one contraction run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContractionStats {
    /// Number of bucket eliminations performed.
    pub eliminations: usize,
    /// Elements of the largest intermediate tensor.
    pub max_intermediate_elems: usize,
    /// Peak bytes of tensors live at once (uncompressed accounting).
    pub peak_live_bytes: usize,
    /// Total bytes of all intermediates produced.
    pub total_intermediate_bytes: usize,
}

/// Contracts a network to a scalar by bucket elimination.
///
/// `order` must contain every variable occurring in `tensors` (extra entries
/// are ignored). Returns the scalar value and run statistics.
pub fn contract_network(
    tensors: Vec<Tensor>,
    order: &[Ix],
    hook: &mut dyn ContractionHook,
) -> Result<(Complex64, ContractionStats), ContractError> {
    let position: BTreeMap<Ix, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Earliest-eliminated variable of a tensor = its bucket.
    let bucket_of = |t: &Tensor| -> Result<Option<usize>, ContractError> {
        let mut best: Option<usize> = None;
        for &v in t.indices() {
            let p = *position.get(&v).ok_or(ContractError::IncompleteOrder(v))?;
            best = Some(best.map_or(p, |b: usize| b.min(p)));
        }
        Ok(best)
    };

    let _span = qcf_telemetry::span!("contract.network");
    let mut buckets: Vec<Vec<Tensor>> = (0..order.len()).map(|_| Vec::new()).collect();
    let mut scalar = Complex64::ONE;
    let mut stats = ContractionStats::default();
    // Local level + peak stay exact per run (and with telemetry disabled);
    // the registry gauge aggregates live bytes across concurrent runs.
    let mut live = live_bytes_gauge().track();

    for t in tensors {
        live.add(t.nbytes() as i64);
        match bucket_of(&t)? {
            Some(b) => buckets[b].push(t),
            None => scalar *= t.get(&[]),
        }
    }

    for step in 0..order.len() {
        let bucket = std::mem::take(&mut buckets[step]);
        if bucket.is_empty() {
            continue;
        }
        let var = order[step];
        let mut iter = bucket.into_iter();
        let mut acc = iter.next().expect("non-empty bucket");
        for t in iter {
            let next = multiply_keep(&acc, &t)?;
            live.add(next.nbytes() as i64);
            live.sub((acc.nbytes() + t.nbytes()) as i64);
            acc = next;
        }
        let summed = acc.sum_over(var)?;
        live.add(summed.nbytes() as i64);
        live.sub(acc.nbytes() as i64);
        drop(acc);

        stats.eliminations += 1;
        stats.max_intermediate_elems = stats.max_intermediate_elems.max(summed.len());
        stats.total_intermediate_bytes += summed.nbytes();

        let replaced = {
            let _span = qcf_telemetry::span!("contract.hook");
            hook.on_intermediate(summed)?
        };
        match bucket_of(&replaced)? {
            Some(b) => {
                debug_assert!(b > step, "result must flow to a later bucket");
                buckets[b].push(replaced);
            }
            None => {
                scalar *= replaced.get(&[]);
                live.sub(replaced.nbytes() as i64);
            }
        }
    }

    stats.peak_live_bytes = live.peak() as usize;
    Ok((scalar, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{InteractionGraph, OrderingHeuristic};
    use tensornet::contract;

    fn t(ix: Vec<Ix>, vals: Vec<f64>) -> Tensor {
        Tensor::qubit(ix, vals.into_iter().map(Complex64::real).collect()).unwrap()
    }

    fn order_for(tensors: &[Tensor]) -> Vec<Ix> {
        InteractionGraph::from_tensors(tensors).elimination_order(OrderingHeuristic::MinFill)
    }

    #[test]
    fn matrix_chain_inner_product() {
        // v(0) · M(0,1) · w(1) with v=[1,2], M=[[1,0],[0,1]], w=[3,4] = 11
        let ts = vec![
            t(vec![0], vec![1.0, 2.0]),
            t(vec![0, 1], vec![1.0, 0.0, 0.0, 1.0]),
            t(vec![1], vec![3.0, 4.0]),
        ];
        let order = order_for(&ts);
        let (val, stats) = contract_network(ts, &order, &mut NoopHook).unwrap();
        assert!(val.approx_eq(Complex64::real(11.0), 1e-12));
        assert_eq!(stats.eliminations, 2);
    }

    #[test]
    fn hyperedge_variable_in_three_tensors() {
        // Σ_x a(x) b(x) c(x), a=[1,2], b=[3,4], c=[5,6] -> 1*3*5 + 2*4*6 = 63
        let ts = vec![
            t(vec![0], vec![1.0, 2.0]),
            t(vec![0], vec![3.0, 4.0]),
            t(vec![0], vec![5.0, 6.0]),
        ];
        let (val, _) = contract_network(ts, &[0], &mut NoopHook).unwrap();
        assert!(val.approx_eq(Complex64::real(63.0), 1e-12));
    }

    #[test]
    fn matches_pairwise_contract_on_random_network() {
        // A small network where pairwise contraction is easy to do by hand:
        // T1(0,1) T2(1,2) T3(2,3) T4(3,0) — a loop.
        let ts = vec![
            t(vec![0, 1], vec![0.5, -1.0, 2.0, 1.5]),
            t(vec![1, 2], vec![1.0, 2.0, 3.0, 4.0]),
            t(vec![2, 3], vec![-1.0, 0.5, 0.25, 2.0]),
            t(vec![3, 0], vec![2.0, 1.0, 0.0, -0.5]),
        ];
        let pairwise = {
            let a = contract(&ts[0], &ts[1]).unwrap();
            let b = contract(&a, &ts[2]).unwrap();
            let c = contract(&b, &ts[3]).unwrap();
            c.get(&[])
        };
        let order = order_for(&ts);
        let (val, _) = contract_network(ts, &order, &mut NoopHook).unwrap();
        assert!(
            val.approx_eq(pairwise, 1e-10),
            "bucket {val:?} vs pairwise {pairwise:?}"
        );
    }

    #[test]
    fn scalar_only_network() {
        let ts = vec![
            Tensor::scalar(Complex64::real(3.0)),
            Tensor::scalar(Complex64::real(4.0)),
        ];
        let (val, stats) = contract_network(ts, &[], &mut NoopHook).unwrap();
        assert!(val.approx_eq(Complex64::real(12.0), 1e-12));
        assert_eq!(stats.eliminations, 0);
    }

    #[test]
    fn incomplete_order_is_an_error() {
        let ts = vec![t(vec![0, 1], vec![1.0; 4])];
        assert!(matches!(
            contract_network(ts, &[0], &mut NoopHook),
            Err(ContractError::IncompleteOrder(1))
        ));
    }

    #[test]
    fn order_permutation_does_not_change_value() {
        let ts = vec![
            t(vec![0, 1], vec![1.0, 2.0, 3.0, 4.0]),
            t(vec![1, 2], vec![0.5, 1.5, -1.0, 2.0]),
            t(vec![0], vec![1.0, -1.0]),
            t(vec![2], vec![2.0, 3.0]),
        ];
        let (v1, _) = contract_network(ts.clone(), &[0, 1, 2], &mut NoopHook).unwrap();
        let (v2, _) = contract_network(ts.clone(), &[2, 1, 0], &mut NoopHook).unwrap();
        let (v3, _) = contract_network(ts, &[1, 0, 2], &mut NoopHook).unwrap();
        assert!(v1.approx_eq(v2, 1e-12));
        assert!(v1.approx_eq(v3, 1e-12));
    }

    #[test]
    fn hook_sees_every_intermediate() {
        struct Counter(usize);
        impl ContractionHook for Counter {
            fn on_intermediate(&mut self, t: Tensor) -> Result<Tensor, ContractError> {
                self.0 += 1;
                Ok(t)
            }
        }
        let ts = vec![
            t(vec![0, 1], vec![1.0; 4]),
            t(vec![1, 2], vec![1.0; 4]),
            t(vec![2], vec![1.0, 1.0]),
        ];
        let mut hook = Counter(0);
        let order = order_for(&ts);
        let (_, stats) = contract_network(ts, &order, &mut hook).unwrap();
        assert_eq!(hook.0, stats.eliminations);
    }

    #[test]
    fn hook_may_replace_tensor() {
        struct Zeroer;
        impl ContractionHook for Zeroer {
            fn on_intermediate(&mut self, t: Tensor) -> Result<Tensor, ContractError> {
                let (ix, dims, data) = t.into_parts();
                Ok(Tensor::new(ix, dims, vec![Complex64::ZERO; data.len()]).unwrap())
            }
        }
        let ts = vec![t(vec![0], vec![1.0, 2.0]), t(vec![0], vec![3.0, 4.0])];
        let (val, _) = contract_network(ts, &[0], &mut Zeroer).unwrap();
        assert!(val.approx_eq(Complex64::ZERO, 1e-12));
    }

    #[test]
    fn stats_track_peak_memory() {
        let ts = vec![t(vec![0, 1], vec![1.0; 4]), t(vec![1, 2], vec![1.0; 4])];
        let (_, stats) = contract_network(ts, &[0, 1, 2], &mut NoopHook).unwrap();
        assert!(stats.peak_live_bytes >= 2 * 4 * 16);
        assert!(stats.max_intermediate_elems >= 2);
    }
}
