//! QAOA energy computation by per-edge lightcone contraction.
//!
//! `E(γ, β) = Σ_{(a,b)∈E} (1 − ⟨Z_a Z_b⟩)/2`, with each edge term contracted
//! over its own lightcone — the exact QTensor workflow whose intermediate
//! tensors the paper compresses.

use crate::contraction::{
    contract_network, ContractError, ContractionHook, ContractionStats, NoopHook,
};
use crate::lightcone::lightcone;
use crate::network::TensorNetwork;
use crate::ordering::{InteractionGraph, OrderingHeuristic};
use crate::pairwise::contract_greedy;
use qcircuit::{qaoa_circuit, Circuit, Graph, QaoaParams};

/// How networks are contracted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Variable-at-a-time bucket elimination over a greedy order (QTensor's
    /// formulation; the default).
    #[default]
    BucketElimination,
    /// Greedy min-size pairwise contraction tree (opt_einsum-style).
    GreedyPairwise,
}

/// Tensor-network simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    /// Elimination-order heuristic (bucket elimination only).
    pub heuristic: OrderingHeuristic,
    /// Restrict each expectation to its lightcone (QTensor default: on).
    pub use_lightcone: bool,
    /// Contraction strategy.
    pub strategy: Strategy,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator {
            heuristic: OrderingHeuristic::MinFill,
            use_lightcone: true,
            strategy: Strategy::BucketElimination,
        }
    }
}

/// Result of an energy computation.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// Total MaxCut objective expectation `⟨C⟩`.
    pub energy: f64,
    /// Per-edge `⟨Z_a Z_b⟩` values in `graph.edges()` order.
    pub zz_terms: Vec<f64>,
    /// Aggregated contraction statistics over all edge terms.
    pub stats: ContractionStats,
}

impl Simulator {
    /// Creates a simulator with explicit settings (bucket elimination).
    pub fn new(heuristic: OrderingHeuristic, use_lightcone: bool) -> Self {
        Simulator {
            heuristic,
            use_lightcone,
            strategy: Strategy::BucketElimination,
        }
    }

    /// Builder: selects the contraction strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// `⟨Z_a Z_b⟩` for one edge of `circuit`, feeding intermediates to `hook`.
    pub fn zz_expectation(
        &self,
        circuit: &Circuit,
        a: usize,
        b: usize,
        hook: &mut dyn ContractionHook,
    ) -> Result<(f64, ContractionStats), ContractError> {
        let net = if self.use_lightcone {
            let lc = lightcone(circuit, &[a, b]);
            let ca = lc.compact_id(a).expect("a is in its own cone");
            let cb = lc.compact_id(b).expect("b is in its own cone");
            TensorNetwork::zz_expectation_network(&lc.circuit, ca, cb)
        } else {
            TensorNetwork::zz_expectation_network(circuit, a, b)
        };
        let tensors = net.into_tensors();
        let (value, stats) = match self.strategy {
            Strategy::BucketElimination => {
                let order =
                    InteractionGraph::from_tensors(&tensors).elimination_order(self.heuristic);
                contract_network(tensors, &order, hook)?
            }
            Strategy::GreedyPairwise => contract_greedy(tensors, hook)?,
        };
        // Exact contraction yields a real scalar; lossy hooks perturb it into
        // the complex plane. Like the paper's workflow, report the real part
        // (the imaginary residue is compression noise of the same order).
        Ok((value.re, stats))
    }

    /// `⟨Z_q⟩` for one qubit of `circuit` (lightcone-restricted like the
    /// edge terms).
    pub fn z_expectation(
        &self,
        circuit: &Circuit,
        q: usize,
        hook: &mut dyn ContractionHook,
    ) -> Result<f64, ContractError> {
        let net = if self.use_lightcone {
            let lc = lightcone(circuit, &[q]);
            let cq = lc.compact_id(q).expect("q is in its own cone");
            let mut net = TensorNetwork::new(lc.circuit.n_qubits());
            net.apply_circuit(&lc.circuit);
            net.apply_z(cq);
            net.apply_circuit_reversed_dagger(&lc.circuit);
            net.close_with_zero_caps();
            net
        } else {
            let mut net = TensorNetwork::new(circuit.n_qubits());
            net.apply_circuit(circuit);
            net.apply_z(q);
            net.apply_circuit_reversed_dagger(circuit);
            net.close_with_zero_caps();
            net
        };
        let tensors = net.into_tensors();
        let value = match self.strategy {
            Strategy::BucketElimination => {
                let order =
                    InteractionGraph::from_tensors(&tensors).elimination_order(self.heuristic);
                contract_network(tensors, &order, hook)?.0
            }
            Strategy::GreedyPairwise => contract_greedy(tensors, hook)?.0,
        };
        Ok(value.re)
    }

    /// Exact (hook-free) energy of the QAOA state for `graph`.
    pub fn energy(
        &self,
        graph: &Graph,
        params: &QaoaParams,
    ) -> Result<EnergyReport, ContractError> {
        self.energy_with_hook(graph, params, &mut NoopHook)
    }

    /// Energy with every intermediate tensor routed through `hook`
    /// (compression plugs in here).
    pub fn energy_with_hook(
        &self,
        graph: &Graph,
        params: &QaoaParams,
        hook: &mut dyn ContractionHook,
    ) -> Result<EnergyReport, ContractError> {
        let circuit = qaoa_circuit(graph, params);
        let mut zz_terms = Vec::with_capacity(graph.m());
        let mut agg = ContractionStats::default();
        let mut energy = 0.0;
        for &(a, b) in graph.edges() {
            let (zz, stats) = self.zz_expectation(&circuit, a, b, hook)?;
            energy += 0.5 * (1.0 - zz);
            zz_terms.push(zz);
            agg.eliminations += stats.eliminations;
            agg.max_intermediate_elems =
                agg.max_intermediate_elems.max(stats.max_intermediate_elems);
            agg.peak_live_bytes = agg.peak_live_bytes.max(stats.peak_live_bytes);
            agg.total_intermediate_bytes += stats.total_intermediate_bytes;
        }
        Ok(EnergyReport {
            energy,
            zz_terms,
            stats: agg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;
    use qcircuit::Gate;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() < tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn bell_state_zz() {
        let c = Circuit::new(2).with(Gate::H(0)).with(Gate::Cnot(0, 1));
        let sim = Simulator::default();
        let (zz, _) = sim.zz_expectation(&c, 0, 1, &mut NoopHook).unwrap();
        assert_close(zz, 1.0, 1e-10, "bell ZZ");
    }

    #[test]
    fn matches_statevector_on_qaoa_ring() {
        let g = Graph::cycle(6);
        let params = QaoaParams::new(vec![0.8], vec![0.3]);
        let sv = StateVector::run(&qaoa_circuit(&g, &params));
        let sim = Simulator::default();
        let report = sim.energy(&g, &params).unwrap();
        assert_close(report.energy, sv.maxcut_energy(&g), 1e-9, "ring p=1 energy");
        for (i, &(a, b)) in g.edges().iter().enumerate() {
            assert_close(
                report.zz_terms[i],
                sv.zz_expectation(a, b),
                1e-9,
                "edge term",
            );
        }
    }

    #[test]
    fn matches_statevector_on_random_regular_p2() {
        let g = Graph::random_regular(8, 3, 42);
        let params = QaoaParams::new(vec![0.4, 0.7], vec![0.2, 0.5]);
        let sv = StateVector::run(&qaoa_circuit(&g, &params));
        let sim = Simulator::default();
        let report = sim.energy(&g, &params).unwrap();
        assert_close(
            report.energy,
            sv.maxcut_energy(&g),
            1e-8,
            "3-regular p=2 energy",
        );
    }

    #[test]
    fn lightcone_off_gives_same_answer() {
        let g = Graph::random_regular(6, 3, 7);
        let params = QaoaParams::fixed_angles_3reg_p1();
        let with = Simulator::new(OrderingHeuristic::MinFill, true)
            .energy(&g, &params)
            .unwrap();
        let without = Simulator::new(OrderingHeuristic::MinFill, false)
            .energy(&g, &params)
            .unwrap();
        assert_close(with.energy, without.energy, 1e-8, "lightcone on/off");
        // ...but the lightcone run touches fewer variables.
        assert!(with.stats.total_intermediate_bytes <= without.stats.total_intermediate_bytes);
    }

    #[test]
    fn heuristics_agree_on_value() {
        let g = Graph::random_regular(10, 3, 3);
        let params = QaoaParams::new(vec![0.5, 0.9], vec![0.25, 0.4]);
        let e1 = Simulator::new(OrderingHeuristic::MinFill, true)
            .energy(&g, &params)
            .unwrap();
        let e2 = Simulator::new(OrderingHeuristic::MinDegree, true)
            .energy(&g, &params)
            .unwrap();
        assert_close(e1.energy, e2.energy, 1e-8, "min-fill vs min-degree");
    }

    #[test]
    fn erdos_renyi_matches_statevector() {
        let g = Graph::erdos_renyi(9, 0.35, 11);
        let params = QaoaParams::new(vec![0.6], vec![0.35]);
        let sv = StateVector::run(&qaoa_circuit(&g, &params));
        let report = Simulator::default().energy(&g, &params).unwrap();
        assert_close(report.energy, sv.maxcut_energy(&g), 1e-8, "ER graph energy");
    }

    #[test]
    fn stats_accumulate() {
        let g = Graph::cycle(5);
        let params = QaoaParams::fixed_angles_3reg_p1();
        let report = Simulator::default().energy(&g, &params).unwrap();
        assert!(report.stats.eliminations > 0);
        assert!(report.stats.max_intermediate_elems >= 2);
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::contraction::NoopHook;
    use crate::statevector::StateVector;

    #[test]
    fn pairwise_strategy_matches_bucket_and_oracle() {
        let g = Graph::random_regular(10, 3, 71);
        let params = QaoaParams::fixed_angles_3reg_p2();
        let bucket = Simulator::default().energy(&g, &params).unwrap().energy;
        let pairwise = Simulator::default()
            .with_strategy(Strategy::GreedyPairwise)
            .energy(&g, &params)
            .unwrap()
            .energy;
        assert!((bucket - pairwise).abs() < 1e-8, "{bucket} vs {pairwise}");
    }

    #[test]
    fn z_expectation_matches_statevector() {
        let g = Graph::random_regular(8, 3, 9);
        let params = QaoaParams::new(vec![0.6, 0.2], vec![0.35, 0.5]);
        let circuit = qaoa_circuit(&g, &params);
        let sv = StateVector::run(&circuit);
        let sim = Simulator::default();
        for q in 0..g.n() {
            let z = sim.z_expectation(&circuit, q, &mut NoopHook).unwrap();
            assert!((z - sv.z_expectation(q)).abs() < 1e-9, "qubit {q}");
        }
    }

    #[test]
    fn z_expectation_without_lightcone_agrees() {
        let g = Graph::cycle(6);
        let params = QaoaParams::fixed_angles_3reg_p1();
        let circuit = qaoa_circuit(&g, &params);
        let with = Simulator::default();
        let without = Simulator::new(OrderingHeuristic::MinFill, false);
        for q in [0usize, 3] {
            let a = with.z_expectation(&circuit, q, &mut NoopHook).unwrap();
            let b = without.z_expectation(&circuit, q, &mut NoopHook).unwrap();
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pairwise_strategy_supports_compression_hooks() {
        use crate::compressed::CompressingHook;
        use compressors::cuszx::CuSzx;
        use compressors::ErrorBound;
        let g = Graph::random_regular(8, 3, 12);
        let params = QaoaParams::fixed_angles_3reg_p1();
        let exact = Simulator::default().energy(&g, &params).unwrap().energy;
        let comp = CuSzx::default();
        let mut hook = CompressingHook::new(&comp, ErrorBound::Abs(1e-6), 2);
        let e = Simulator::default()
            .with_strategy(Strategy::GreedyPairwise)
            .energy_with_hook(&g, &params, &mut hook)
            .unwrap()
            .energy;
        assert!((e - exact).abs() / exact < 0.01);
        assert!(hook.stats.tensors_compressed > 0);
    }
}
