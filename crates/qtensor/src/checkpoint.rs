//! Durable snapshots for [`CompressedState`](crate::CompressedState):
//! the on-disk format, the atomic commit protocol, and the deterministic
//! crash sites the kill-point recovery drills drive.
//!
//! ## Snapshot format (version 1, all little-endian)
//!
//! ```text
//! "QCFSNAP1"                                    8-byte magic + version
//! n u32 | chunk_qubits u32                      geometry
//! compressor_id u8                              the codec's stable stream id
//! bound_kind u8 (0 = Abs, 1 = Rel) | bound f64  error bound
//! lossy_events u64                              ledger aggregate
//! n_chunks u32
//! app_meta_len u32 | app_meta bytes             caller-opaque blob (qcfz
//!                                               stores circuit + progress)
//! per chunk:
//!   frame_len u32 | sealed v2 frame bytes       resident or read from spill
//!   chunk_norm f64
//!   ledger record: encodes u64 | requants u64 | accumulated_bound f64 |
//!     last_abs_bound f64 | max_measured_err f64 | measured u8 |
//!     quarantines u64
//! fault counters: decode_errors | retries_ok | cache_repairs |
//!   quarantines | worker_panics (u64 each) | lost_norm_sq f64
//! footer: fnv1a32 u32 over everything above | "QCFSEND1"
//! ```
//!
//! Every chunk payload is a sealed v2 frame carrying its own checksum, so
//! the footer checksum guards the *manifest* (geometry, index, ledger)
//! while per-chunk corruption still surfaces through the normal
//! decode/heal/quarantine chain after resume.
//!
//! ## Commit protocol
//!
//! `checkpoint()` is an atomic commit: flush the write-back cache (so
//! durable bytes are the ground truth the resumed run re-reads — the
//! same barrier `set_cache_capacity` uses), serialize into
//! `<path>.tmp.<pid>`, fsync, rename over `<path>`, fsync the directory
//! best-effort. A crash at any boundary leaves either the old snapshot
//! or the new one — never a torn file at the committed path. The five
//! [`kill_point`] boundaries make that claim drillable:
//!
//! 1. after the cache barrier, before the temp file exists
//! 2. mid-body (half the serialized bytes written)
//! 3. body complete, footer not yet written
//! 4. footer written and fsynced, rename not yet done
//! 5. rename done, before returning
//!
//! `ckpt.kill_point@N` fires boundary N and the writer returns
//! [`CkptError::KillPoint`] *without cleanup*, leaving the disk exactly
//! as a SIGKILL there would. `ckpt.torn_write` models lying storage: the
//! body is written short but the commit completes; resume's footer
//! checksum rejects the file. Stale `*.tmp.<pid>` files from crashed
//! writers are swept by pid-liveness on the next checkpoint in the same
//! directory ([`crate::spill::sweep_stale_dir`]).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

pub(crate) use codec_kit::frame::fnv1a32;

/// Leading magic: snapshot file, format version 1.
pub(crate) const SNAP_MAGIC: &[u8; 8] = b"QCFSNAP1";
/// Trailing magic: the footer completed.
pub(crate) const SNAP_END: &[u8; 8] = b"QCFSEND1";
/// Footer bytes: fnv1a32 over the body + the end magic.
pub(crate) const SNAP_FOOTER: usize = 4 + SNAP_END.len();

/// Why a checkpoint or resume failed.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The state could not reach the durable barrier (flush failed).
    State(String),
    /// The snapshot failed validation on resume.
    Corrupt(String),
    /// A `ckpt.kill_point@N` fault fired: the process "crashed" at commit
    /// boundary N, leaving the disk exactly as a real crash would.
    KillPoint(u32),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "io error: {e}"),
            CkptError::State(m) => write!(f, "state not checkpointable: {m}"),
            CkptError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            CkptError::KillPoint(n) => {
                write!(f, "simulated crash at ckpt.kill_point@{n}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// One commit boundary: under `ckpt.kill_point@N` the Nth boundary
/// reached returns the simulated crash, with no cleanup.
fn kill_point(n: u32) -> Result<(), CkptError> {
    match qcf_telemetry::faults::inject("ckpt.kill_point") {
        Some(_) => Err(CkptError::KillPoint(n)),
        None => Ok(()),
    }
}

/// The temp path a writer with pid `pid` uses for `path`.
fn tmp_path(path: &Path, pid: u32) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".into());
    path.with_file_name(format!("{name}.tmp.{pid}"))
}

/// Commits `body` (everything before the footer) to `path` atomically:
/// temp → fsync → rename → best-effort dir fsync. Returns total bytes
/// at the committed path. Boundaries 1–5 are kill points (see module
/// docs); `ckpt.torn_write` cuts the body write short while letting the
/// commit complete, so the footer checksum catches it on resume.
pub(crate) fn write_snapshot(path: &Path, body: &[u8]) -> Result<u64, CkptError> {
    let crc = fnv1a32(body);
    kill_point(1)?;
    // Sweep crashed writers' temp files in this directory first — the
    // drills re-run against the same path and must not leak disk.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            crate::spill::sweep_stale_dir(dir);
        }
    }
    let tmp = tmp_path(path, std::process::id());
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    let half = body.len() / 2;
    f.write_all(&body[..half])?;
    kill_point(2)?;
    let rest = match qcf_telemetry::faults::inject("ckpt.torn_write") {
        // Lying storage: drop a tail of the body but keep committing.
        Some(draw) if body.len() > half => {
            &body[half..body.len() - 1 - (draw as usize % (body.len() - half))]
        }
        _ => &body[half..],
    };
    f.write_all(rest)?;
    kill_point(3)?;
    f.write_all(&crc.to_le_bytes())?;
    f.write_all(SNAP_END)?;
    f.sync_all()?;
    drop(f);
    kill_point(4)?;
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    kill_point(5)?;
    Ok((body.len() + SNAP_FOOTER) as u64)
}

/// Reads and validates a snapshot's envelope: length, end magic, footer
/// checksum. Returns the body bytes (everything before the footer).
pub(crate) fn read_snapshot(path: &Path) -> Result<Vec<u8>, CkptError> {
    let mut bytes = std::fs::read(path)?;
    if bytes.len() < SNAP_MAGIC.len() + SNAP_FOOTER {
        return Err(CkptError::Corrupt(format!(
            "{} bytes is too short for a snapshot",
            bytes.len()
        )));
    }
    let body_len = bytes.len() - SNAP_FOOTER;
    if &bytes[body_len + 4..] != SNAP_END {
        return Err(CkptError::Corrupt("missing end magic".into()));
    }
    let stored = u32::from_le_bytes(bytes[body_len..body_len + 4].try_into().unwrap());
    let actual = fnv1a32(&bytes[..body_len]);
    if stored != actual {
        return Err(CkptError::Corrupt(format!(
            "footer checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    bytes.truncate(body_len);
    Ok(bytes)
}

/// Validates a snapshot's envelope and reports which codec wrote it (the
/// stable stream id stored in the manifest), so a CLI can pick the
/// matching compressor before calling
/// [`CompressedState::resume`](crate::CompressedState::resume).
pub fn snapshot_compressor_id(path: &Path) -> Result<u8, CkptError> {
    let body = read_snapshot(path)?;
    let mut r = Reader::new(&body);
    if r.take(SNAP_MAGIC.len())? != SNAP_MAGIC {
        return Err(CkptError::Corrupt("bad snapshot magic".into()));
    }
    r.u32()?; // n
    r.u32()?; // chunk_qubits
    r.u8()
}

// ---------------------------------------------------------------------------
// Little-endian serialization helpers (zero-dep, bounds-checked reader)
// ---------------------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a snapshot body. Every
/// overrun is a [`CkptError::Corrupt`], never a panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                CkptError::Corrupt(format!(
                    "truncated body: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bytes left unread (must be 0 after a complete parse).
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("qcf-ckpt-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_tampering() {
        let path = tmp("roundtrip.qcfs");
        let body = b"QCFSNAP1 pretend body".to_vec();
        let total = write_snapshot(&path, &body).unwrap();
        assert_eq!(total, (body.len() + SNAP_FOOTER) as u64);
        assert_eq!(read_snapshot(&path).unwrap(), body);
        // Flip one body byte: the footer checksum must reject the file.
        let mut raw = std::fs::read(&path).unwrap();
        raw[3] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(read_snapshot(&path), Err(CkptError::Corrupt(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_points_leave_the_committed_path_crash_consistent() {
        use qcf_telemetry::faults;
        let _guard = faults::chaos_guard();
        let path = tmp("killpoints.qcfs");
        let _ = std::fs::remove_file(&path);
        write_snapshot(&path, b"golden snapshot body").unwrap();
        let golden = std::fs::read(&path).unwrap();
        for n in 1..=5u32 {
            faults::arm_from_spec(&format!("seed=3,ckpt.kill_point@{n}")).unwrap();
            let res = write_snapshot(&path, b"the replacement body");
            faults::disarm();
            match res {
                Err(CkptError::KillPoint(k)) => assert_eq!(k, n),
                other => panic!("boundary {n}: expected a kill, got {other:?}"),
            }
            let now = std::fs::read(&path).unwrap();
            if n < 5 {
                assert_eq!(now, golden, "boundary {n} must keep the old snapshot");
            } else {
                // Boundary 5 is after the rename: the new snapshot
                // committed even though the "process" died.
                assert_eq!(read_snapshot(&path).unwrap(), b"the replacement body");
            }
            // Either way the committed path always validates.
            read_snapshot(&path).unwrap();
        }
        let _ = std::fs::remove_file(&path);
        // The boundary-1..3 "crashes" left temp files behind on purpose;
        // a later writer sweeps them only once their owner pid is dead,
        // so here they are still present (we are alive) — clean up.
        let dir = path.parent().unwrap().to_path_buf();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_commits_a_snapshot_the_checksum_rejects() {
        use qcf_telemetry::faults;
        let _guard = faults::chaos_guard();
        let path = tmp("torn.qcfs");
        faults::arm_from_spec("seed=11,ckpt.torn_write@1").unwrap();
        let res = write_snapshot(&path, b"body that will be cut short");
        faults::disarm();
        res.unwrap(); // the commit itself "succeeds" — storage lied
        match read_snapshot(&path) {
            Err(CkptError::Corrupt(_)) => {}
            other => panic!("expected corrupt verdict, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_rejects_overruns_without_panicking() {
        let mut r = Reader::new(&[1, 2, 3, 4, 5]);
        assert_eq!(r.u32().unwrap(), u32::from_le_bytes([1, 2, 3, 4]));
        assert!(r.u32().is_err());
        assert_eq!(r.u8().unwrap(), 5);
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err());
    }
}
