//! The error-budget ledger: per-chunk accounting of every lossy event.
//!
//! The related amplitude-compression work (and this repo's own E8
//! characterization in `qcf-core::fidelity`) agree on the failure mode of
//! compressed simulation: it is the *accumulated* requantization error — not
//! the per-chunk bound — that degrades the final fidelity. The write-back
//! chunk cache bounds how often that error is paid (once per residency),
//! but until now nothing *recorded* it: a run that requantized one hot
//! chunk 200 times looked identical to one that requantized it twice.
//!
//! [`ErrorLedger`] closes that gap. [`CompressedState`](crate::CompressedState)
//! reports every lossy event into it:
//!
//! * the **initial quantization** of each chunk at state preparation,
//! * every **requantization** — a dirty chunk re-encoded at cache eviction,
//!   flush, or (cache disabled) per gate,
//! * **error mixing** when a cross-chunk gate combines chunks, so each
//!   chunk's running estimate reflects everything that flowed into it.
//!
//! Per event the ledger stores the resolved absolute bound and folds it
//! into a running accumulated-bound estimate using the same first-order
//! random-walk model `qcf-core::fidelity` calibrates against measurements:
//! independent bounded perturbations add in quadrature ([`rss_accumulate`]).
//! Lossless events are counted but contribute zero bound, so a lossless
//! codec provably keeps every estimate at exactly `0.0` (property-tested).
//!
//! Bookkeeping is local-always (exact regardless of `QCF_TELEMETRY`, like
//! the `GaugeTrack`-backed stats) and mirrored into the registry when
//! telemetry is on: `state.ledger.requants` (counter),
//! `state.ledger.event_abs_bound` (histogram),
//! `state.ledger.max_requants` (gauge) and
//! `state.ledger.accumulated_bound` (float gauge).

use qcf_telemetry::{Counter, FloatGauge, Gauge, Histogram};
use std::sync::Arc;

/// Folds one more independent bounded perturbation into a running
/// accumulated-bound estimate: the first-order random-walk (root-sum-square)
/// model — `sqrt(acc² + eps²)`.
#[inline]
pub fn rss_accumulate(acc: f64, eps: f64) -> f64 {
    (acc * acc + eps * eps).sqrt()
}

/// Accumulated bound after `events` independent perturbations of equal
/// magnitude `eps`: `eps·√events` (the closed form of repeated
/// [`rss_accumulate`]; `qcf-core::fidelity`'s prediction model is
/// `C ·` this).
#[inline]
pub fn uniform_rss(eps: f64, events: usize) -> f64 {
    eps * (events.max(1) as f64).sqrt()
}

/// Per-chunk ledger record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkRecord {
    /// Total encodes of this chunk (lossy or lossless, including the
    /// initial state-preparation encode).
    pub encodes: u64,
    /// Lossy re-quantizations absorbed (write-backs after the initial
    /// encode; `0` forever under a lossless codec).
    pub requants: u64,
    /// Running accumulated-bound estimate (RSS over every lossy event that
    /// touched this chunk, including error mixed in from grouped gates).
    pub accumulated_bound: f64,
    /// Resolved absolute bound of the most recent lossy event.
    pub last_abs_bound: f64,
    /// Largest *measured* max-abs-error over this chunk's events, when
    /// measurement was cheap (lossless events measure `0.0` for free;
    /// lossy events measure only under `QCF_LEDGER_MEASURE=1`).
    pub max_measured_err: f64,
    /// Whether any event's error was actually measured.
    pub measured: bool,
    /// Times this chunk was quarantined (zero-filled after recovery from a
    /// poisoned decode or encode was exhausted).
    pub quarantines: u64,
}

/// Aggregate view of a whole state's ledger — the queryable per-state
/// summary `qcfz report` renders and baselines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerSummary {
    /// Number of chunks tracked.
    pub chunks: usize,
    /// Total encodes across chunks.
    pub total_encodes: u64,
    /// Total lossy re-quantizations across chunks.
    pub total_requants: u64,
    /// Largest per-chunk requant count.
    pub max_requants: u64,
    /// Largest per-chunk accumulated bound.
    pub max_accumulated_bound: f64,
    /// Mean per-chunk accumulated bound.
    pub mean_accumulated_bound: f64,
    /// RSS over all chunks' accumulated bounds — the state-level input to
    /// `qcf-core::fidelity::predict_ledger_energy_error`.
    pub accumulated_rss: f64,
    /// Largest measured max-abs-error (0.0 when nothing was measured).
    pub max_measured_err: f64,
    /// True when any event was lossy.
    pub lossy: bool,
    /// Total quarantine events across chunks.
    pub total_quarantines: u64,
}

/// Ledger over a fixed set of chunks. Created by
/// [`CompressedState`](crate::CompressedState); exact regardless of the
/// telemetry enabled flag.
#[derive(Debug)]
pub struct ErrorLedger {
    chunks: Vec<ChunkRecord>,
    lossy_events: u64,
    requants: Arc<Counter>,
    quarantines: Arc<Counter>,
    bound_hist: Arc<Histogram>,
    max_requants_gauge: Arc<Gauge>,
    acc_bound_gauge: Arc<FloatGauge>,
    acc_rss_gauge: Arc<FloatGauge>,
}

impl ErrorLedger {
    /// A fresh ledger over `n_chunks` chunks.
    pub fn new(n_chunks: usize) -> Self {
        let reg = qcf_telemetry::registry();
        ErrorLedger {
            chunks: vec![ChunkRecord::default(); n_chunks],
            lossy_events: 0,
            requants: reg.counter("state.ledger.requants"),
            quarantines: reg.counter("state.ledger.quarantines"),
            bound_hist: reg.histogram(
                "state.ledger.event_abs_bound",
                &[1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0],
            ),
            max_requants_gauge: reg.gauge("state.ledger.max_requants"),
            acc_bound_gauge: reg.float_gauge("state.ledger.accumulated_bound"),
            acc_rss_gauge: reg.float_gauge("state.ledger.accumulated_rss"),
        }
    }

    /// Rebuilds a ledger from checkpointed records: the restored state's
    /// accounting (and its registry mirrors) must be field-for-field the
    /// state that was checkpointed, so resumed runs report identically.
    pub(crate) fn restore(records: Vec<ChunkRecord>, lossy_events: u64) -> Self {
        let mut ledger = ErrorLedger::new(records.len());
        ledger.chunks = records;
        ledger.lossy_events = lossy_events;
        let max = ledger.chunks.iter().map(|c| c.requants).max().unwrap_or(0);
        ledger.max_requants_gauge.set(max as i64);
        ledger.publish_bounds();
        ledger
    }

    /// Every chunk's record, in chunk order (checkpoint serialization).
    pub(crate) fn records(&self) -> &[ChunkRecord] {
        &self.chunks
    }

    /// Refreshes the registry mirrors of the state-level bounds: the
    /// worst per-chunk accumulated bound and the state-level RSS across
    /// chunks ([`LedgerSummary::accumulated_rss`] — the fidelity signal
    /// the SLO engine watches live, rather than only at summary time).
    fn publish_bounds(&self) {
        let mut max_acc = 0.0f64;
        let mut rss = 0.0f64;
        for c in &self.chunks {
            max_acc = max_acc.max(c.accumulated_bound);
            rss = rss_accumulate(rss, c.accumulated_bound);
        }
        self.acc_bound_gauge.set(max_acc);
        self.acc_rss_gauge.set(rss);
    }

    /// Number of chunks tracked.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The record for chunk `id`.
    pub fn chunk(&self, id: usize) -> &ChunkRecord {
        &self.chunks[id]
    }

    /// Total lossy events recorded (initial quantizations + requants).
    pub fn lossy_events(&self) -> u64 {
        self.lossy_events
    }

    /// Records the initial (state-preparation) encode of chunk `id`.
    /// `abs_bound` is the resolved absolute bound when the encode was
    /// lossy, `None` for a lossless codec.
    pub fn record_initial(&mut self, id: usize, abs_bound: Option<f64>) {
        self.record_event(id, abs_bound, None, false);
    }

    /// Records a write-back of chunk `id`. Lossy write-backs (`abs_bound`
    /// present) count as one requantization; `measured_err` is the actual
    /// max-abs-error when it was cheap to obtain.
    pub fn record_requant(&mut self, id: usize, abs_bound: Option<f64>, measured_err: Option<f64>) {
        self.record_event(id, abs_bound, measured_err, true);
    }

    fn record_event(
        &mut self,
        id: usize,
        abs_bound: Option<f64>,
        measured_err: Option<f64>,
        requant: bool,
    ) {
        let rec = &mut self.chunks[id];
        rec.encodes += 1;
        if let Some(err) = measured_err {
            rec.max_measured_err = rec.max_measured_err.max(err);
            rec.measured = true;
        }
        let Some(eps) = abs_bound else {
            return; // lossless: counted, zero error contribution
        };
        self.lossy_events += 1;
        rec.last_abs_bound = eps;
        rec.accumulated_bound = rss_accumulate(rec.accumulated_bound, eps);
        if requant {
            rec.requants += 1;
            self.requants.inc();
            let max = self.chunks.iter().map(|c| c.requants).max().unwrap_or(0);
            self.max_requants_gauge.set(max as i64);
        }
        self.bound_hist.observe(eps);
        self.publish_bounds();
    }

    /// Records a quarantine of chunk `id`: its amplitudes were zero-filled
    /// after every recovery policy failed, losing `lost_norm_sq` of squared
    /// amplitude norm. The loss enters the chunk's accumulated bound as one
    /// perturbation of magnitude `sqrt(lost_norm_sq)` — an upper bound on
    /// the amplitude error the zero-fill introduced — so downstream
    /// fidelity predictions see quarantines as (large) lossy events rather
    /// than silently ignoring them.
    pub fn record_quarantine(&mut self, id: usize, lost_norm_sq: f64) {
        let rec = &mut self.chunks[id];
        rec.quarantines += 1;
        self.lossy_events += 1;
        let eps = lost_norm_sq.max(0.0).sqrt();
        rec.accumulated_bound = rss_accumulate(rec.accumulated_bound, eps);
        self.quarantines.inc();
        self.publish_bounds();
    }

    /// Propagates accumulated bounds through a cross-chunk (grouped) gate.
    ///
    /// The gate's unitary moves amplitude — and with it the accumulated
    /// perturbation — between the member chunks, but being unitary it
    /// preserves the total error energy. To first order the group's sum of
    /// squared bounds is therefore conserved and redistributed evenly: each
    /// member ends at `sqrt(Σᵢ bᵢ² / k)`. This keeps the state-level
    /// [`LedgerSummary::accumulated_rss`] an invariant of the events alone
    /// (for a uniform bound ε it stays exactly `ε·√events`, matching
    /// `qcf-core::fidelity`'s closed form no matter how gates regroup the
    /// chunks).
    pub fn mix(&mut self, members: &[usize]) {
        let sum_sq: f64 = members
            .iter()
            .map(|&id| {
                let b = self.chunks[id].accumulated_bound;
                b * b
            })
            .sum();
        if sum_sq == 0.0 {
            return;
        }
        let per_member = (sum_sq / members.len() as f64).sqrt();
        for &id in members {
            self.chunks[id].accumulated_bound = per_member;
        }
    }

    /// The aggregate per-state summary.
    pub fn summary(&self) -> LedgerSummary {
        let mut s = LedgerSummary {
            chunks: self.chunks.len(),
            lossy: self.lossy_events > 0,
            ..LedgerSummary::default()
        };
        for rec in &self.chunks {
            s.total_encodes += rec.encodes;
            s.total_requants += rec.requants;
            s.max_requants = s.max_requants.max(rec.requants);
            s.max_accumulated_bound = s.max_accumulated_bound.max(rec.accumulated_bound);
            s.mean_accumulated_bound += rec.accumulated_bound;
            s.accumulated_rss = rss_accumulate(s.accumulated_rss, rec.accumulated_bound);
            s.max_measured_err = s.max_measured_err.max(rec.max_measured_err);
            s.total_quarantines += rec.quarantines;
        }
        if !self.chunks.is_empty() {
            s.mean_accumulated_bound /= self.chunks.len() as f64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_matches_closed_form() {
        let mut acc = 0.0;
        for _ in 0..9 {
            acc = rss_accumulate(acc, 1e-4);
        }
        assert!((acc - uniform_rss(1e-4, 9)).abs() < 1e-18);
        assert_eq!(rss_accumulate(0.0, 0.0), 0.0);
        assert!((rss_accumulate(3.0, 4.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lossless_events_accumulate_nothing() {
        let mut l = ErrorLedger::new(4);
        for id in 0..4 {
            l.record_initial(id, None);
        }
        l.record_requant(2, None, Some(0.0));
        let s = l.summary();
        assert_eq!(s.total_encodes, 5);
        assert_eq!(s.total_requants, 0, "lossless write-backs are not requants");
        assert_eq!(s.max_accumulated_bound, 0.0);
        assert_eq!(s.accumulated_rss, 0.0);
        assert!(!s.lossy);
    }

    #[test]
    fn requants_count_per_chunk_and_bounds_accumulate() {
        let mut l = ErrorLedger::new(2);
        l.record_initial(0, Some(1e-4));
        l.record_initial(1, Some(1e-4));
        l.record_requant(0, Some(1e-4), None);
        l.record_requant(0, Some(1e-4), None);
        let s = l.summary();
        assert_eq!(s.total_requants, 2);
        assert_eq!(s.max_requants, 2);
        assert_eq!(l.chunk(1).requants, 0);
        // Chunk 0 absorbed 3 lossy events, chunk 1 one.
        assert!((l.chunk(0).accumulated_bound - uniform_rss(1e-4, 3)).abs() < 1e-18);
        assert!((l.chunk(1).accumulated_bound - 1e-4).abs() < 1e-18);
        assert!(s.lossy);
    }

    #[test]
    fn mixing_conserves_error_energy_across_chunks() {
        let mut l = ErrorLedger::new(3);
        l.record_initial(0, Some(3e-5));
        l.record_initial(1, Some(4e-5));
        let rss_before = l.summary().accumulated_rss;
        l.mix(&[0, 1]);
        // Evenly redistributed: each member at sqrt((3² + 4²)/2)·1e-5.
        let want = (rss_accumulate(3e-5, 4e-5).powi(2) / 2.0).sqrt();
        assert!((l.chunk(0).accumulated_bound - want).abs() < 1e-18);
        assert!((l.chunk(1).accumulated_bound - want).abs() < 1e-18);
        assert_eq!(l.chunk(2).accumulated_bound, 0.0, "untouched chunk");
        // The state-level RSS is invariant under mixing.
        assert!((l.summary().accumulated_rss - rss_before).abs() < 1e-18);
        // Mixing clean chunks is a no-op.
        l.mix(&[2]);
        assert_eq!(l.chunk(2).accumulated_bound, 0.0);
    }

    #[test]
    fn quarantine_folds_lost_norm_into_the_bound() {
        let mut l = ErrorLedger::new(2);
        l.record_initial(0, Some(1e-4));
        l.record_quarantine(0, 0.25); // lost norm² 0.25 → eps 0.5
        let s = l.summary();
        assert_eq!(s.total_quarantines, 1);
        assert_eq!(l.chunk(0).quarantines, 1);
        assert_eq!(l.chunk(1).quarantines, 0);
        assert!((l.chunk(0).accumulated_bound - rss_accumulate(1e-4, 0.5)).abs() < 1e-15);
        assert!(s.lossy);
    }

    #[test]
    fn measured_error_is_tracked() {
        let mut l = ErrorLedger::new(1);
        l.record_requant(0, Some(1e-3), Some(4.2e-4));
        l.record_requant(0, Some(1e-3), Some(1.0e-4));
        let s = l.summary();
        assert!(s.max_measured_err > 4e-4);
        assert!(l.chunk(0).measured);
    }
}
