//! Circuit → tensor network translation (the QTensor formulation).
//!
//! Every qubit wire is a chain of binary *variables*. A gate that is
//! diagonal in a qubit re-uses that wire's current variable; a non-diagonal
//! gate ends the current variable and opens a fresh one. The expectation
//! `⟨0|U† O U|0⟩` of a diagonal observable `O` then becomes a sum over all
//! variable assignments of a product of small tensors — exactly the network
//! QTensor contracts, with the diagonal-gate rank reduction that keeps QAOA
//! networks close to the underlying graph's treewidth.

use qcircuit::{Circuit, Gate};
use tensornet::{Complex64, Ix, Tensor};

/// A tensor network under construction: tensors plus per-qubit open wires.
#[derive(Debug, Clone)]
pub struct TensorNetwork {
    tensors: Vec<Tensor>,
    /// Current variable of each qubit wire.
    wire: Vec<Ix>,
    next_var: Ix,
}

impl TensorNetwork {
    /// Starts a network for `n_qubits` wires with `|0⟩` caps attached
    /// (variables `0..n_qubits`).
    pub fn new(n_qubits: usize) -> Self {
        let mut net = TensorNetwork {
            tensors: Vec::new(),
            wire: (0..n_qubits as Ix).collect(),
            next_var: n_qubits as Ix,
        };
        for q in 0..n_qubits {
            net.tensors.push(ket_zero(q as Ix));
        }
        net
    }

    /// Number of qubit wires.
    pub fn n_qubits(&self) -> usize {
        self.wire.len()
    }

    /// The tensors accumulated so far.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Consumes the network, yielding its tensors.
    pub fn into_tensors(self) -> Vec<Tensor> {
        self.tensors
    }

    /// Variables used so far (`0..next_var`).
    pub fn n_variables(&self) -> usize {
        self.next_var as usize
    }

    /// Current variable of a wire.
    pub fn wire_var(&self, qubit: usize) -> Ix {
        self.wire[qubit]
    }

    /// Appends a gate, advancing wire variables on non-diagonal qubits.
    pub fn apply_gate(&mut self, gate: &Gate) {
        let qs = gate.qubits();
        let k = qs.len();
        let m = gate.matrix();
        let dim = 1usize << k;

        let diag: Vec<bool> = (0..k).map(|lq| gate.is_diagonal_in(lq)).collect();

        // Reduced axes: diagonal qubit -> one axis (shared var); non-diagonal
        // qubit -> out axis (fresh var) then in axis (current var).
        let mut axes: Vec<Ix> = Vec::with_capacity(2 * k);
        let mut new_wire: Vec<(usize, Ix)> = Vec::new();
        for (lq, &q) in qs.iter().enumerate() {
            if diag[lq] {
                axes.push(self.wire[q]);
            } else {
                let fresh = self.next_var;
                self.next_var += 1;
                axes.push(fresh); // out
                axes.push(self.wire[q]); // in
                new_wire.push((q, fresh));
            }
        }

        // Fill the reduced tensor: walk every (out, in) pair of the full
        // matrix; keep entries consistent with diagonality (guaranteed by
        // construction for diagonal qubits — others are zero).
        let rank = axes.len();
        let mut data = vec![Complex64::ZERO; 1usize << rank];
        for out in 0..dim {
            for input in 0..dim {
                let v = m[out * dim + input];
                if v == Complex64::ZERO {
                    continue;
                }
                // bit of local qubit lq in a basis index (qubit 0 msb)
                let bit = |word: usize, lq: usize| (word >> (k - 1 - lq)) & 1;
                let mut consistent = true;
                let mut lin = 0usize;
                for (lq, &is_diag) in diag.iter().enumerate() {
                    if is_diag {
                        if bit(out, lq) != bit(input, lq) {
                            consistent = false;
                            break;
                        }
                        lin = lin * 2 + bit(out, lq);
                    } else {
                        lin = lin * 2 + bit(out, lq);
                        lin = lin * 2 + bit(input, lq);
                    }
                }
                if consistent {
                    data[lin] = v;
                }
            }
        }

        self.tensors
            .push(Tensor::qubit(axes, data).expect("gate tensor construction is shape-correct"));
        for (q, fresh) in new_wire {
            self.wire[q] = fresh;
        }
    }

    /// Appends every gate of a circuit.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits(),
            "register width mismatch"
        );
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// Appends an arbitrary tensor (caps, observables, custom operators).
    pub fn push_tensor(&mut self, tensor: Tensor) {
        self.tensors.push(tensor);
    }

    /// Inserts the diagonal observable `Z` on a wire's current variable.
    pub fn apply_z(&mut self, qubit: usize) {
        let var = self.wire[qubit];
        self.tensors.push(
            Tensor::qubit(vec![var], vec![Complex64::ONE, -Complex64::ONE]).expect("Z tensor"),
        );
    }

    /// Closes every wire with a `⟨0|` cap. After this the network contracts
    /// to the scalar `⟨0…0| (appended operators) |0…0⟩`.
    pub fn close_with_zero_caps(&mut self) {
        for q in 0..self.n_qubits() {
            let var = self.wire[q];
            self.tensors.push(ket_zero(var));
        }
    }

    /// Builds the full expectation network `⟨0|U† Z_a Z_b U|0⟩`.
    pub fn zz_expectation_network(circuit: &Circuit, a: usize, b: usize) -> Self {
        let mut net = TensorNetwork::new(circuit.n_qubits());
        net.apply_circuit(circuit);
        net.apply_z(a);
        net.apply_z(b);
        net.apply_circuit_reversed_dagger(circuit);
        net.close_with_zero_caps();
        net
    }

    /// Appends the daggered circuit in reverse order (the `⟨ψ|` half of an
    /// expectation network).
    pub fn apply_circuit_reversed_dagger(&mut self, circuit: &Circuit) {
        for g in circuit.gates().iter().rev() {
            self.apply_gate(&g.dagger());
        }
    }
}

/// `|0⟩` (equivalently `⟨0|`, it is real) as a rank-1 tensor on `var`.
fn ket_zero(var: Ix) -> Tensor {
    Tensor::qubit(vec![var], vec![Complex64::ONE, Complex64::ZERO]).expect("ket0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Gate;

    #[test]
    fn diagonal_gate_keeps_variable() {
        let mut net = TensorNetwork::new(2);
        let v0 = net.wire_var(0);
        net.apply_gate(&Gate::Rz(0, 0.3));
        assert_eq!(
            net.wire_var(0),
            v0,
            "diagonal gate must not advance the wire"
        );
        net.apply_gate(&Gate::Zz(0, 1, 0.5));
        assert_eq!(net.wire_var(0), v0);
        assert_eq!(net.n_variables(), 2);
    }

    #[test]
    fn nondiagonal_gate_advances_variable() {
        let mut net = TensorNetwork::new(1);
        let v0 = net.wire_var(0);
        net.apply_gate(&Gate::H(0));
        assert_ne!(net.wire_var(0), v0);
        assert_eq!(net.n_variables(), 2);
    }

    #[test]
    fn cnot_advances_only_target() {
        let mut net = TensorNetwork::new(2);
        let (c0, t0) = (net.wire_var(0), net.wire_var(1));
        net.apply_gate(&Gate::Cnot(0, 1));
        assert_eq!(net.wire_var(0), c0, "control is diagonal");
        assert_ne!(net.wire_var(1), t0, "target advances");
        // CNOT reduced tensor: rank 3 (control, target_out, target_in).
        let t = net.tensors().last().unwrap();
        assert_eq!(t.rank(), 3);
    }

    #[test]
    fn cnot_tensor_entries() {
        let mut net = TensorNetwork::new(2);
        net.apply_gate(&Gate::Cnot(0, 1));
        let t = net.tensors().last().unwrap();
        // axes: [control (shared), target_out, target_in]
        // control=0 -> identity on target; control=1 -> X on target.
        for c in 0..2 {
            for to in 0..2 {
                for ti in 0..2 {
                    let want = if c == 0 {
                        (to == ti) as i32
                    } else {
                        (to != ti) as i32
                    };
                    assert!(
                        t.get(&[c, to, ti])
                            .approx_eq(Complex64::real(want as f64), 1e-12),
                        "c={c} to={to} ti={ti}"
                    );
                }
            }
        }
    }

    #[test]
    fn zz_tensor_is_rank_two() {
        let mut net = TensorNetwork::new(2);
        net.apply_gate(&Gate::Zz(0, 1, 0.7));
        let t = net.tensors().last().unwrap();
        assert_eq!(t.rank(), 2);
        assert!(t.get(&[0, 0]).approx_eq(Complex64::cis(-0.35), 1e-12));
        assert!(t.get(&[0, 1]).approx_eq(Complex64::cis(0.35), 1e-12));
    }

    #[test]
    fn expectation_network_size() {
        // 2 qubits, H on each: network = 2 ket caps + 2 H + 2 Z + 2 H† + 2 bra caps.
        let c = Circuit::new(2).with(Gate::H(0)).with(Gate::H(1));
        let net = TensorNetwork::zz_expectation_network(&c, 0, 1);
        assert_eq!(net.tensors().len(), 10);
        // vars: 2 initial + 2 (forward H) + 2 (backward H) = 6
        assert_eq!(net.n_variables(), 6);
    }
}
