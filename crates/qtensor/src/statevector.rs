//! Exact statevector simulator — the ground-truth oracle.
//!
//! The paper validates compressed tensor-network runs against the *true*
//! energy. For up to ~22 qubits we obtain that truth exactly by dense
//! statevector simulation, which also cross-checks the tensor-network
//! contractor itself in the test suite.

use qcircuit::{Circuit, Gate, Graph};
use tensornet::Complex64;

/// A dense `2^n` statevector.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex64>,
}

/// Applies `gate` to a raw little-endian amplitude buffer of `n` qubits
/// (`amps.len() == 2^n`). Shared between [`StateVector`] and the
/// chunk-compressed simulator in [`crate::compressed_state`].
pub fn apply_gate_to_amplitudes(amps: &mut [Complex64], n: usize, gate: &Gate) {
    debug_assert_eq!(amps.len(), 1usize << n);
    // Fixed-size accessors keep this hot path allocation-free — the
    // compressed-state apply loop relies on that for its steady state.
    let (qs, k) = gate.qubits_array();
    let (m, _) = gate.matrix_array();
    match k {
        1 => apply_1q(amps, qs[0], &m),
        2 => apply_2q(amps, qs[0], qs[1], &m),
        k => unreachable!("no {k}-qubit gates in the gate set"),
    }
}

fn apply_1q(amps: &mut [Complex64], q: usize, m: &[Complex64]) {
    let mask = 1usize << q;
    debug_assert!(mask < amps.len());
    for i in 0..amps.len() {
        if i & mask == 0 {
            let j = i | mask;
            let (a0, a1) = (amps[i], amps[j]);
            amps[i] = m[0] * a0 + m[1] * a1;
            amps[j] = m[2] * a0 + m[3] * a1;
        }
    }
}

fn apply_2q(amps: &mut [Complex64], qa: usize, qb: usize, m: &[Complex64]) {
    debug_assert!(qa != qb);
    // Matrix basis: gate qubit 0 (qa) most significant.
    let ma = 1usize << qa;
    let mb = 1usize << qb;
    debug_assert!(ma < amps.len() && mb < amps.len());
    for i in 0..amps.len() {
        if i & ma == 0 && i & mb == 0 {
            let idx = [i, i | mb, i | ma, i | ma | mb]; // |qa qb⟩ = 00,01,10,11
            let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
            for (row, &slot) in idx.iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (col, &av) in a.iter().enumerate() {
                    acc = acc.mul_add(m[row * 4 + col], av);
                }
                amps[slot] = acc;
            }
        }
    }
}

impl StateVector {
    /// Maximum register width accepted (2^24 amplitudes = 256 MiB).
    pub const MAX_QUBITS: usize = 24;

    /// `|0…0⟩` over `n` qubits.
    ///
    /// # Panics
    /// Panics when `n > MAX_QUBITS`.
    pub fn zero(n: usize) -> Self {
        assert!(
            n <= Self::MAX_QUBITS,
            "statevector limited to {} qubits",
            Self::MAX_QUBITS
        );
        let mut amps = vec![Complex64::ZERO; 1usize << n];
        amps[0] = Complex64::ONE;
        StateVector { n, amps }
    }

    /// Builds a state from raw amplitudes (must have length `2^n`).
    pub fn from_amplitudes(n: usize, amps: Vec<Complex64>) -> Result<Self, String> {
        if amps.len() != 1usize << n {
            return Err(format!("expected 2^{n} amplitudes, got {}", amps.len()));
        }
        Ok(StateVector { n, amps })
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Raw amplitudes; index bit `q` (little-endian: bit 0 = qubit 0) is the
    /// basis value of qubit `q`.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Squared norm (should stay 1 under unitaries).
    pub fn norm_sq(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum()
    }

    /// Applies a gate in place.
    pub fn apply(&mut self, gate: &Gate) {
        apply_gate_to_amplitudes(&mut self.amps, self.n, gate);
    }

    /// Runs a whole circuit from `|0…0⟩`.
    pub fn run(circuit: &Circuit) -> Self {
        let mut sv = StateVector::zero(circuit.n_qubits());
        for g in circuit.gates() {
            sv.apply(g);
        }
        sv
    }

    /// `⟨ψ| Z_a Z_b |ψ⟩` (always real for a valid state; returned as `f64`).
    pub fn zz_expectation(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a < self.n && b < self.n);
        let (ma, mb) = (1usize << a, 1usize << b);
        let mut e = 0.0;
        for (i, amp) in self.amps.iter().enumerate() {
            let sign = if ((i & ma != 0) as u8) ^ ((i & mb != 0) as u8) == 1 {
                -1.0
            } else {
                1.0
            };
            e += sign * amp.norm_sq();
        }
        e
    }

    /// `⟨ψ| Z_q |ψ⟩`.
    pub fn z_expectation(&self, q: usize) -> f64 {
        let mq = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .map(|(i, amp)| {
                if i & mq != 0 {
                    -amp.norm_sq()
                } else {
                    amp.norm_sq()
                }
            })
            .sum()
    }

    /// MaxCut QAOA energy `⟨C⟩ = Σ_(a,b) (1 - ⟨Z_a Z_b⟩)/2`.
    pub fn maxcut_energy(&self, graph: &Graph) -> f64 {
        graph
            .edges()
            .iter()
            .map(|&(a, b)| 0.5 * (1.0 - self.zz_expectation(a, b)))
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²` between two states.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n);
        let mut ip = Complex64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            ip += a.conj() * *b;
        }
        ip.norm_sq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{qaoa_circuit, QaoaParams};

    #[test]
    fn zero_state() {
        let sv = StateVector::zero(3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert!((sv.norm_sq() - 1.0).abs() < 1e-12);
        assert!((sv.z_expectation(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_makes_plus() {
        let mut sv = StateVector::zero(1);
        sv.apply(&Gate::H(0));
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitudes()[0].approx_eq(Complex64::real(h), 1e-12));
        assert!(sv.amplitudes()[1].approx_eq(Complex64::real(h), 1e-12));
        assert!(sv.z_expectation(0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let c = Circuit::new(2).with(Gate::H(0)).with(Gate::Cnot(0, 1));
        let sv = StateVector::run(&c);
        assert!((sv.zz_expectation(0, 1) - 1.0).abs() < 1e-12);
        assert!(sv.z_expectation(0).abs() < 1e-12);
        assert!((sv.norm_sq() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips() {
        let mut sv = StateVector::zero(2);
        sv.apply(&Gate::X(1));
        assert!((sv.z_expectation(1) + 1.0).abs() < 1e-12);
        assert!((sv.z_expectation(0) - 1.0).abs() < 1e-12);
        assert!((sv.zz_expectation(0, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_preserved_through_random_circuit() {
        let c = Circuit::new(3)
            .with(Gate::H(0))
            .with(Gate::Ry(1, 0.7))
            .with(Gate::Cnot(0, 2))
            .with(Gate::Zz(1, 2, 0.4))
            .with(Gate::Rx(0, 1.3))
            .with(Gate::Cz(0, 1))
            .with(Gate::T(2))
            .with(Gate::Swap(0, 1));
        let sv = StateVector::run(&c);
        assert!((sv.norm_sq() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn swap_really_swaps() {
        let mut sv = StateVector::zero(2);
        sv.apply(&Gate::X(0));
        sv.apply(&Gate::Swap(0, 1));
        assert!((sv.z_expectation(0) - 1.0).abs() < 1e-12);
        assert!((sv.z_expectation(1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn qubit_order_in_two_qubit_gates() {
        // CNOT(0,1) with qubit 0 = control: X(0) then CNOT flips qubit 1.
        let mut sv = StateVector::zero(2);
        sv.apply(&Gate::X(0));
        sv.apply(&Gate::Cnot(0, 1));
        assert!((sv.z_expectation(1) + 1.0).abs() < 1e-12);
        // ...and CNOT(1,0) with qubit 1 = control leaves qubit 0 alone.
        let mut sv = StateVector::zero(2);
        sv.apply(&Gate::X(0));
        sv.apply(&Gate::Cnot(1, 0));
        assert!((sv.z_expectation(0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn qaoa_p1_ring_energy_matches_analytic() {
        // For a triangle-free graph the p=1 QAOA energy per edge (a,b) has
        // the closed form (Wang et al. 2018):
        //   ⟨C_ab⟩ = 1/2 + (1/4) sin(4β) sin(γ) [cos^(d_a-1)(γ) + cos^(d_b-1)(γ)]
        // For a ring d_a = d_b = 2, so the bracket is 2 cos(γ).
        let n = 8;
        let g = Graph::cycle(n);
        let (gamma, beta) = (0.9, 0.35);
        let c = qaoa_circuit(&g, &QaoaParams::new(vec![gamma], vec![beta]));
        let sv = StateVector::run(&c);
        let per_edge = 0.5 + 0.5 * (4.0 * beta).sin() * gamma.sin() * gamma.cos();
        let want = per_edge * g.m() as f64;
        assert!(
            (sv.maxcut_energy(&g) - want).abs() < 1e-10,
            "got {}, want {want}",
            sv.maxcut_energy(&g)
        );
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let c = qaoa_circuit(&Graph::cycle(4), &QaoaParams::fixed_angles_3reg_p1());
        let a = StateVector::run(&c);
        let b = StateVector::run(&c);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        let zero = StateVector::zero(4);
        assert!(a.fidelity(&zero) < 1.0);
    }
}
