//! Variable-elimination ordering heuristics.
//!
//! Bucket elimination's cost is `2^w` where `w` is the width induced by the
//! elimination order, so the order is the whole ballgame. QTensor uses greedy
//! line-graph heuristics; we implement the two classics — **min-degree** and
//! **min-fill** — over the network's variable interaction graph, plus an
//! exact width evaluator used by tests and the ordering ablation bench.

use std::collections::{BTreeMap, BTreeSet};
use tensornet::{Ix, Tensor};

/// Which greedy heuristic to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingHeuristic {
    /// Eliminate the variable with the fewest neighbours first.
    MinDegree,
    /// Eliminate the variable whose elimination adds the fewest fill edges.
    MinFill,
}

/// The variable interaction graph: an undirected graph whose vertices are
/// tensor-network variables and whose edges join variables co-occurring in a
/// tensor (the network's *line graph* in QTensor terminology).
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    adj: BTreeMap<Ix, BTreeSet<Ix>>,
}

impl InteractionGraph {
    /// Builds the interaction graph of a tensor list.
    pub fn from_tensors(tensors: &[Tensor]) -> Self {
        let mut adj: BTreeMap<Ix, BTreeSet<Ix>> = BTreeMap::new();
        for t in tensors {
            for &v in t.indices() {
                adj.entry(v).or_default();
            }
            for (i, &a) in t.indices().iter().enumerate() {
                for &b in &t.indices()[i + 1..] {
                    adj.get_mut(&a).unwrap().insert(b);
                    adj.get_mut(&b).unwrap().insert(a);
                }
            }
        }
        InteractionGraph { adj }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.adj.len()
    }

    /// Neighbours of a variable (empty when isolated or absent).
    pub fn neighbours(&self, v: Ix) -> impl Iterator<Item = Ix> + '_ {
        self.adj.get(&v).into_iter().flatten().copied()
    }

    /// Greedy elimination order under the chosen heuristic.
    ///
    /// Ties break toward the smallest variable id, making orders
    /// deterministic across runs.
    pub fn elimination_order(&self, heuristic: OrderingHeuristic) -> Vec<Ix> {
        let mut adj = self.adj.clone();
        let mut order = Vec::with_capacity(adj.len());
        while !adj.is_empty() {
            let best = match heuristic {
                OrderingHeuristic::MinDegree => *adj
                    .iter()
                    .min_by_key(|(v, ns)| (ns.len(), **v))
                    .map(|(v, _)| v)
                    .expect("non-empty"),
                OrderingHeuristic::MinFill => *adj
                    .iter()
                    .min_by_key(|(v, ns)| (fill_in(&adj, ns), **v))
                    .map(|(v, _)| v)
                    .expect("non-empty"),
            };
            eliminate(&mut adj, best);
            order.push(best);
        }
        order
    }

    /// Width induced by an order: the largest clique formed during
    /// elimination, i.e. `max` over steps of (neighbours remaining when the
    /// variable is eliminated). The largest intermediate tensor has
    /// `2^width` elements.
    pub fn width_of_order(&self, order: &[Ix]) -> usize {
        let mut adj = self.adj.clone();
        let mut width = 0usize;
        for &v in order {
            if let Some(ns) = adj.get(&v) {
                width = width.max(ns.len());
            }
            eliminate(&mut adj, v);
        }
        width
    }
}

/// Number of missing edges among the neighbour set (fill-in cost).
fn fill_in(adj: &BTreeMap<Ix, BTreeSet<Ix>>, ns: &BTreeSet<Ix>) -> usize {
    let mut missing = 0usize;
    let list: Vec<Ix> = ns.iter().copied().collect();
    for (i, &a) in list.iter().enumerate() {
        for &b in &list[i + 1..] {
            if !adj[&a].contains(&b) {
                missing += 1;
            }
        }
    }
    missing
}

/// Removes `v`, connecting all its neighbours pairwise (the fill step).
fn eliminate(adj: &mut BTreeMap<Ix, BTreeSet<Ix>>, v: Ix) {
    let ns: Vec<Ix> = match adj.remove(&v) {
        Some(set) => set.into_iter().collect(),
        None => return,
    };
    for (i, &a) in ns.iter().enumerate() {
        adj.get_mut(&a).map(|s| s.remove(&v));
        for &b in &ns[i + 1..] {
            adj.get_mut(&a).map(|s| s.insert(b));
            adj.get_mut(&b).map(|s| s.insert(a));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensornet::Complex64;

    fn t(ix: Vec<Ix>) -> Tensor {
        let n = 1usize << ix.len();
        Tensor::qubit(ix, vec![Complex64::ONE; n]).unwrap()
    }

    #[test]
    fn chain_graph_has_width_one() {
        // tensors: (0,1) (1,2) (2,3) — a path; any greedy order has width 1.
        let ts = vec![t(vec![0, 1]), t(vec![1, 2]), t(vec![2, 3])];
        let g = InteractionGraph::from_tensors(&ts);
        assert_eq!(g.n_vars(), 4);
        for h in [OrderingHeuristic::MinDegree, OrderingHeuristic::MinFill] {
            let order = g.elimination_order(h);
            assert_eq!(order.len(), 4);
            assert_eq!(g.width_of_order(&order), 1);
        }
    }

    #[test]
    fn cycle_graph_has_width_two() {
        let ts = vec![t(vec![0, 1]), t(vec![1, 2]), t(vec![2, 3]), t(vec![3, 0])];
        let g = InteractionGraph::from_tensors(&ts);
        let order = g.elimination_order(OrderingHeuristic::MinFill);
        assert_eq!(g.width_of_order(&order), 2);
    }

    #[test]
    fn clique_width_is_n_minus_one() {
        // one rank-4 tensor = a 4-clique
        let ts = vec![t(vec![0, 1, 2, 3])];
        let g = InteractionGraph::from_tensors(&ts);
        let order = g.elimination_order(OrderingHeuristic::MinDegree);
        assert_eq!(g.width_of_order(&order), 3);
    }

    #[test]
    fn isolated_variables_handled() {
        let ts = vec![t(vec![0]), t(vec![1, 2])];
        let g = InteractionGraph::from_tensors(&ts);
        let order = g.elimination_order(OrderingHeuristic::MinDegree);
        assert_eq!(order.len(), 3);
        assert_eq!(g.width_of_order(&order), 1);
    }

    #[test]
    fn orders_are_deterministic() {
        let ts = vec![t(vec![0, 1]), t(vec![1, 2]), t(vec![0, 2])];
        let g = InteractionGraph::from_tensors(&ts);
        let o1 = g.elimination_order(OrderingHeuristic::MinFill);
        let o2 = g.elimination_order(OrderingHeuristic::MinFill);
        assert_eq!(o1, o2);
    }

    #[test]
    fn min_fill_no_worse_on_grid() {
        // 3x3 grid graph as rank-2 tensors; min-fill should reach width <= 3.
        let mut ts = Vec::new();
        let id = |r: u32, c: u32| r * 3 + c;
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    ts.push(t(vec![id(r, c), id(r, c + 1)]));
                }
                if r + 1 < 3 {
                    ts.push(t(vec![id(r, c), id(r + 1, c)]));
                }
            }
        }
        let g = InteractionGraph::from_tensors(&ts);
        let w = g.width_of_order(&g.elimination_order(OrderingHeuristic::MinFill));
        assert!(w <= 3, "3x3 grid width {w} > 3");
    }
}
