//! Greedy pairwise contraction — the contraction-tree alternative to
//! bucket elimination.
//!
//! QTensor's ecosystem (and opt_einsum) often contracts networks pairwise
//! along a tree chosen by a greedy cost heuristic. This module implements
//! that strategy over the same tensor networks, with the subtlety bucket
//! elimination hides: a label shared by *more* than two tensors (hyperedge —
//! diagonal gates create them) must NOT be summed when two of its tensors
//! contract; it is summed only when its last two holders meet. Pairwise
//! results therefore match bucket elimination exactly, which the tests
//! assert, and the two strategies give the experiment harness an ordering
//! ablation axis.

use crate::contraction::{ContractError, ContractionHook, ContractionStats};
use std::collections::BTreeMap;
use tensornet::{multiply_keep, shared_indices, Complex64, Ix, Tensor};

/// Contracts tensors `a` and `b`, summing only the shared labels whose
/// remaining reference count (outside these two tensors) is zero.
pub fn contract_pair(
    a: &Tensor,
    b: &Tensor,
    label_refs: &BTreeMap<Ix, usize>,
) -> Result<Tensor, ContractError> {
    let shared = shared_indices(a, b);
    let mut result = multiply_keep(a, b)?;
    for ix in shared {
        let outside = label_refs.get(&ix).copied().unwrap_or(0).saturating_sub(2);
        if outside == 0 {
            result = result.sum_over(ix)?;
        }
    }
    Ok(result)
}

/// Estimated element count of the pairwise product of `a` and `b` after
/// summing dead shared labels — the greedy heuristic's cost.
fn result_size(a: &Tensor, b: &Tensor, label_refs: &BTreeMap<Ix, usize>) -> usize {
    let mut size = 1usize;
    for (&ix, &d) in a.indices().iter().zip(a.dims()) {
        let on_b = b.position(ix).is_some();
        let outside = label_refs.get(&ix).copied().unwrap_or(0) - 1 - on_b as usize;
        if !on_b || outside > 0 {
            size = size.saturating_mul(d);
        }
    }
    for (&ix, &d) in b.indices().iter().zip(b.dims()) {
        if a.position(ix).is_none() {
            size = size.saturating_mul(d);
        }
    }
    size
}

/// Executes a greedy min-result-size pairwise contraction of the network,
/// feeding every intermediate to `hook`. Returns the scalar and stats.
pub fn contract_greedy(
    tensors: Vec<Tensor>,
    hook: &mut dyn ContractionHook,
) -> Result<(Complex64, ContractionStats), ContractError> {
    let mut live: Vec<Option<Tensor>> = tensors.into_iter().map(Some).collect();
    let mut label_refs: BTreeMap<Ix, usize> = BTreeMap::new();
    for t in live.iter().flatten() {
        for &ix in t.indices() {
            *label_refs.entry(ix).or_insert(0) += 1;
        }
    }

    let mut stats = ContractionStats::default();
    let mut live_bytes: usize = live.iter().flatten().map(|t| t.nbytes()).sum();
    stats.peak_live_bytes = live_bytes;
    let mut remaining: usize = live.iter().flatten().count();

    while remaining > 1 {
        // Greedy: the pair (preferring connected pairs) with the smallest
        // estimated result.
        let ids: Vec<usize> = live
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .map(|(i, _)| i)
            .collect();
        let mut best: Option<(usize, usize, usize, bool)> = None;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let (ta, tb) = (live[a].as_ref().unwrap(), live[b].as_ref().unwrap());
                let connected = !shared_indices(ta, tb).is_empty();
                let size = result_size(ta, tb, &label_refs);
                let better = match &best {
                    None => true,
                    Some((_, _, bsize, bconn)) => {
                        (connected && !bconn) || (connected == *bconn && size < *bsize)
                    }
                };
                if better {
                    best = Some((a, b, size, connected));
                }
            }
        }
        let (ia, ib, _, _) = best.expect("two tensors remain");
        let ta = live[ia].take().expect("live");
        let tb = live[ib].take().expect("live");
        remaining -= 1;

        let product = contract_pair(&ta, &tb, &label_refs)?;
        live_bytes += product.nbytes();
        stats.peak_live_bytes = stats.peak_live_bytes.max(live_bytes);
        live_bytes -= ta.nbytes() + tb.nbytes();

        // Update reference counts: labels of the consumed tensors vanish,
        // the product's labels re-register.
        for t in [&ta, &tb] {
            for &ix in t.indices() {
                if let Some(r) = label_refs.get_mut(&ix) {
                    *r -= 1;
                }
            }
        }
        for &ix in product.indices() {
            *label_refs.entry(ix).or_insert(0) += 1;
        }

        stats.eliminations += 1;
        stats.max_intermediate_elems = stats.max_intermediate_elems.max(product.len());
        stats.total_intermediate_bytes += product.nbytes();
        let product = hook.on_intermediate(product)?;
        live[ia] = Some(product);
    }

    let last = live
        .into_iter()
        .flatten()
        .next()
        .expect("one tensor remains");
    // Sum any leftover open labels (possible in degenerate networks).
    let mut scalar_t = last;
    for ix in scalar_t.indices().to_vec() {
        scalar_t = scalar_t.sum_over(ix)?;
    }
    Ok((scalar_t.get(&[]), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contraction::{contract_network, NoopHook};
    use crate::network::TensorNetwork;
    use crate::ordering::{InteractionGraph, OrderingHeuristic};
    use qcircuit::{qaoa_circuit, Graph, QaoaParams};

    fn bucket_value(tensors: &[Tensor]) -> Complex64 {
        let order =
            InteractionGraph::from_tensors(tensors).elimination_order(OrderingHeuristic::MinFill);
        contract_network(tensors.to_vec(), &order, &mut NoopHook)
            .unwrap()
            .0
    }

    fn t(ix: Vec<Ix>, vals: Vec<f64>) -> Tensor {
        Tensor::qubit(ix, vals.into_iter().map(Complex64::real).collect()).unwrap()
    }

    #[test]
    fn matches_bucket_on_simple_chain() {
        let ts = vec![
            t(vec![0], vec![1.0, 2.0]),
            t(vec![0, 1], vec![0.5, -1.0, 2.0, 1.5]),
            t(vec![1], vec![3.0, 4.0]),
        ];
        let want = bucket_value(&ts);
        let (got, stats) = contract_greedy(ts, &mut NoopHook).unwrap();
        assert!(got.approx_eq(want, 1e-12));
        assert_eq!(stats.eliminations, 2);
    }

    #[test]
    fn hyperedge_label_not_summed_early() {
        // Σ_x a(x) b(x) c(x): contracting a·b first must keep x alive.
        let ts = vec![
            t(vec![0], vec![1.0, 2.0]),
            t(vec![0], vec![3.0, 4.0]),
            t(vec![0], vec![5.0, 6.0]),
        ];
        let (got, _) = contract_greedy(ts, &mut NoopHook).unwrap();
        assert!(got.approx_eq(Complex64::real(63.0), 1e-12), "got {got:?}");
    }

    #[test]
    fn matches_bucket_on_qaoa_networks() {
        for (n, seed) in [(6usize, 1u64), (8, 2), (10, 3)] {
            let g = Graph::random_regular(n, 3, seed);
            let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
            let net = TensorNetwork::zz_expectation_network(&c, 0, 1);
            let tensors = net.into_tensors();
            let want = bucket_value(&tensors);
            let (got, _) = contract_greedy(tensors, &mut NoopHook).unwrap();
            assert!(
                got.approx_eq(want, 1e-9),
                "n={n}: pairwise {got:?} vs bucket {want:?}"
            );
        }
    }

    #[test]
    fn disconnected_components_handled() {
        let ts = vec![
            t(vec![0], vec![1.0, 1.0]),
            t(vec![0], vec![1.0, 2.0]),
            t(vec![1], vec![2.0, 2.0]),
            t(vec![1], vec![1.0, 1.0]),
        ];
        // (1+2) * (2+2) = 12
        let (got, _) = contract_greedy(ts, &mut NoopHook).unwrap();
        assert!(got.approx_eq(Complex64::real(12.0), 1e-12), "got {got:?}");
    }

    #[test]
    fn hook_sees_intermediates() {
        struct Counter(usize);
        impl ContractionHook for Counter {
            fn on_intermediate(&mut self, t: Tensor) -> Result<Tensor, ContractError> {
                self.0 += 1;
                Ok(t)
            }
        }
        let g = Graph::cycle(6);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
        let tensors = TensorNetwork::zz_expectation_network(&c, 0, 1).into_tensors();
        let n = tensors.len();
        let mut hook = Counter(0);
        contract_greedy(tensors, &mut hook).unwrap();
        assert_eq!(
            hook.0,
            n - 1,
            "a binary tree over n leaves has n-1 internal nodes"
        );
    }

    #[test]
    fn single_tensor_network() {
        let ts = vec![t(vec![0], vec![1.5, 2.5])];
        let (got, stats) = contract_greedy(ts, &mut NoopHook).unwrap();
        assert!(got.approx_eq(Complex64::real(4.0), 1e-12));
        assert_eq!(stats.eliminations, 0);
    }

    #[test]
    fn peak_memory_tracked() {
        let g = Graph::cycle(8);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
        let tensors = TensorNetwork::zz_expectation_network(&c, 0, 1).into_tensors();
        let (_, stats) = contract_greedy(tensors, &mut NoopHook).unwrap();
        assert!(stats.peak_live_bytes > 0);
        assert!(stats.max_intermediate_elems >= 2);
    }
}
