//! # qtensor — a QTensor-style tensor-network circuit simulator
//!
//! The simulation substrate of the QCF reproduction. It turns circuits
//! (crate `qcircuit`) into tensor networks with QTensor's diagonal-gate rank
//! reduction, orders them with greedy line-graph heuristics, contracts them
//! by bucket elimination, and computes QAOA MaxCut energies edge-by-edge
//! over lightcones. Every intermediate tensor flows through a
//! [`ContractionHook`](contraction::ContractionHook) — the integration point
//! for the paper's compression framework (see `compressed`).
//!
//! A dense [`statevector::StateVector`] simulator provides exact ground
//! truth for validation.

pub mod amplitude;
pub mod checkpoint;
pub mod compressed;
pub mod compressed_state;
pub mod contraction;
pub mod energy;
pub mod ledger;
pub mod lightcone;
pub mod network;
pub mod ordering;
pub mod pairwise;
pub mod spill;
pub mod statevector;
pub mod trace;

pub use checkpoint::CkptError;
pub use compressed_state::{CompressedState, FaultStats, StateStats, TierBreakdown, VerifyReport};
pub use contraction::{
    contract_network, ContractError, ContractionHook, ContractionStats, NoopHook,
};
pub use energy::{EnergyReport, Simulator, Strategy};
pub use ledger::{ChunkRecord, ErrorLedger, LedgerSummary};
pub use lightcone::{lightcone, Lightcone};
pub use network::TensorNetwork;
pub use ordering::{InteractionGraph, OrderingHeuristic};
pub use spill::{parse_size, sweep_stale_dir};
pub use statevector::StateVector;
pub use trace::TraceHook;
