//! Intermediate-tensor capture — the compression corpus generator.
//!
//! The paper evaluates compressors "based on QTensor-generated tensors of
//! varying sizes". [`TraceHook`] records (a copy of) every intermediate
//! tensor above a size threshold during contraction; the bench crate runs
//! sizeable QAOA instances under this hook to build the evaluation corpus.

use crate::contraction::{ContractError, ContractionHook};
use tensornet::Tensor;

/// Records intermediates with at least `min_elems` elements, up to
/// `max_tensors` of them (0 = unlimited).
#[derive(Debug, Default)]
pub struct TraceHook {
    min_elems: usize,
    max_tensors: usize,
    captured: Vec<Tensor>,
    /// Total intermediates seen, captured or not.
    pub seen: usize,
}

impl TraceHook {
    /// Creates a trace capturing tensors of `min_elems`+ elements.
    pub fn new(min_elems: usize, max_tensors: usize) -> Self {
        TraceHook {
            min_elems,
            max_tensors,
            captured: Vec::new(),
            seen: 0,
        }
    }

    /// Captured tensors, in production order.
    pub fn captured(&self) -> &[Tensor] {
        &self.captured
    }

    /// Consumes the hook, yielding the captures.
    pub fn into_captured(self) -> Vec<Tensor> {
        self.captured
    }
}

impl ContractionHook for TraceHook {
    fn on_intermediate(&mut self, tensor: Tensor) -> Result<Tensor, ContractError> {
        self.seen += 1;
        if tensor.len() >= self.min_elems
            && (self.max_tensors == 0 || self.captured.len() < self.max_tensors)
        {
            self.captured.push(tensor.clone());
        }
        Ok(tensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::Simulator;
    use qcircuit::{Graph, QaoaParams};

    #[test]
    fn captures_only_above_threshold() {
        let g = Graph::random_regular(8, 3, 5);
        let params = QaoaParams::new(vec![0.4, 0.8], vec![0.3, 0.6]);
        let mut hook = TraceHook::new(8, 0);
        let sim = Simulator::default();
        sim.energy_with_hook(&g, &params, &mut hook).unwrap();
        assert!(hook.seen > 0);
        assert!(
            !hook.captured().is_empty(),
            "p=2 QAOA must produce rank>=3 intermediates"
        );
        assert!(hook.captured().iter().all(|t| t.len() >= 8));
        assert!(hook.seen >= hook.captured().len());
    }

    #[test]
    fn capture_limit_respected() {
        let g = Graph::cycle(6);
        let params = QaoaParams::new(vec![0.4, 0.8], vec![0.3, 0.6]);
        let mut hook = TraceHook::new(1, 3);
        Simulator::default()
            .energy_with_hook(&g, &params, &mut hook)
            .unwrap();
        assert_eq!(hook.captured().len(), 3);
    }

    #[test]
    fn zero_max_tensors_means_unlimited() {
        let g = Graph::random_regular(8, 3, 5);
        let params = QaoaParams::new(vec![0.4, 0.8], vec![0.3, 0.6]);
        let mut unlimited = TraceHook::new(1, 0);
        Simulator::default()
            .energy_with_hook(&g, &params, &mut unlimited)
            .unwrap();
        // With max_tensors = 0 every intermediate above the (trivial)
        // threshold is kept — nothing is cut off at any count.
        assert!(
            unlimited.captured().len() > 3,
            "more than a small cap's worth"
        );
        assert_eq!(unlimited.captured().len(), unlimited.seen);
    }

    #[test]
    fn seen_counts_non_captured_intermediates() {
        let g = Graph::random_regular(8, 3, 5);
        let params = QaoaParams::new(vec![0.4, 0.8], vec![0.3, 0.6]);
        // Impossible threshold: nothing captured, everything still seen.
        let mut hook = TraceHook::new(usize::MAX, 0);
        Simulator::default()
            .energy_with_hook(&g, &params, &mut hook)
            .unwrap();
        assert!(hook.captured().is_empty());
        assert!(
            hook.seen > 0,
            "seen must count intermediates that were not captured"
        );
        // And with a capture cap of 1, seen still counts the rest.
        let mut capped = TraceHook::new(1, 1);
        Simulator::default()
            .energy_with_hook(&g, &params, &mut capped)
            .unwrap();
        assert_eq!(capped.captured().len(), 1);
        assert!(capped.seen > 1);
    }

    #[test]
    fn min_elems_boundary_exact_size_is_captured() {
        // The threshold is inclusive: a tensor of exactly min_elems
        // elements is captured. Drive the hook directly for exact sizes.
        use tensornet::Complex64;
        let mut hook = TraceHook::new(4, 0);
        let exactly = Tensor::qubit(vec![0, 1], vec![Complex64::ONE; 4]).unwrap();
        let smaller = Tensor::qubit(vec![2], vec![Complex64::ONE; 2]).unwrap();
        hook.on_intermediate(exactly).unwrap();
        hook.on_intermediate(smaller).unwrap();
        assert_eq!(hook.seen, 2);
        assert_eq!(
            hook.captured().len(),
            1,
            "exactly-equal size must be captured"
        );
        assert_eq!(hook.captured()[0].len(), 4);
    }

    #[test]
    fn trace_does_not_perturb_energy() {
        let g = Graph::cycle(6);
        let params = QaoaParams::fixed_angles_3reg_p1();
        let sim = Simulator::default();
        let exact = sim.energy(&g, &params).unwrap().energy;
        let mut hook = TraceHook::new(1, 0);
        let traced = sim.energy_with_hook(&g, &params, &mut hook).unwrap().energy;
        assert!((exact - traced).abs() < 1e-12);
    }
}
