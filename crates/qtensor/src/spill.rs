//! The disk tier: an append-log spill file for sealed compressed frames,
//! plus the gate-schedule-aware async prefetch pipeline that hides its
//! latency.
//!
//! ## Why a third tier
//!
//! The write-back cache separates *resident* (decompressed) from
//! *compressed-in-RAM* chunks; when even the compressed working set
//! outgrows the configured budget (`QCF_MEM_BUDGET`), cold sealed v2
//! frames move here. Frames are checksummed and self-describing, so the
//! disk tier needs no format of its own: the spill file is a bare
//! append-log of whole frames with an in-memory `chunk → (offset, len,
//! gen)` index, and a scrub (`CompressedState::verify`) exercises the
//! exact same decode/heal/quarantine chain on fetched bytes as on
//! in-RAM ones.
//!
//! ## Log semantics
//!
//! Appends only — a re-spilled chunk gets a fresh record and the old one
//! becomes dead space until a [`SpillTier::compact`] pass rewrites the
//! live records and atomically swaps the file (long-lived sessions would
//! otherwise grow the log without bound). Every record carries a
//! monotonically increasing *generation*: a prefetch issued against
//! generation `g` is dropped on arrival if the chunk was re-spilled to
//! `g' > g` in the meantime, so stale reads can never resurface old
//! amplitudes.
//!
//! ## Crash consistency
//!
//! Each record is framed on disk as `[magic u32][chunk u32][gen u64]
//! [len u32][fnv1a32(payload) u32]` + payload (24-byte header, all
//! little-endian). In-session reads stay raw — the payload is a sealed
//! v2 frame with its own checksum, so torn or corrupt bytes surface
//! through the normal decode/heal/quarantine chain. The header exists
//! for [`SpillTier::open_recover`]: after a crash, the log is re-scanned
//! record by record and truncated at the first torn tail (incomplete
//! header, payload past EOF, or record-checksum mismatch), recovering
//! exactly the records whose append completed. The `spill.torn_tail`
//! fault site models a crash mid-append by cutting the write short.
//! Spill logs are named with the owning pid; opening a tier sweeps
//! leftovers whose owner is dead, so crash drills don't leak disk.
//!
//! ## Prefetch pipeline
//!
//! [`PrefetchShared`] is a tiny request queue + completion map shared
//! with [`PREFETCH_WORKERS`] I/O threads (double-buffered I/O: two
//! frames in flight while the main thread computes). Workers read the
//! frame and, when fault injection is disarmed, also decode it — the
//! main thread then skips its own codec call. With faults armed the
//! worker returns raw bytes only, keeping every injection draw on the
//! main thread so deterministic fault accounting is preserved. A worker
//! failure of any kind degrades to the synchronous fallback path; it can
//! never corrupt state, because consumed payloads re-enter the normal
//! decode/heal chain.
//!
//! `QCF_SPILL_LATENCY_US` adds a per-read sleep that models a slow
//! device (object store, spinning disk); the async/sync A-B comparisons
//! in tests and `qcfz report` use it to make overlap measurable on fast
//! local filesystems.

use codec_kit::frame::fnv1a32;
use compressors::Compressor;
use gpu_model::{DeviceSpec, Stream};
use qcircuit::Gate;
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::Duration;
use tensornet::Complex64;

/// I/O worker threads per scheduled run (two frames in flight).
pub(crate) const PREFETCH_WORKERS: usize = 2;
/// Max outstanding prefetch requests (queued + in flight + completed,
/// not yet consumed).
pub(crate) const PREFETCH_WINDOW: usize = 8;
/// How far ahead of the current schedule position to scan for spilled
/// chunks when topping up the window.
pub(crate) const PREFETCH_LOOKAHEAD: usize = 64;

// ---------------------------------------------------------------------------
// Environment parsing (QCF_MEM_BUDGET, QCF_CHUNK_CACHE, QCF_SPILL_LATENCY_US)
// ---------------------------------------------------------------------------

/// Parses a non-negative size with an optional binary suffix (`k`/`kb`,
/// `m`/`mb`, `g`/`gb`, case-insensitive): `"4096"`, `"64k"`, `"2MB"`.
pub fn parse_size(raw: &str) -> Result<usize, String> {
    let s = raw.trim();
    if s.is_empty() {
        return Err("empty value".into());
    }
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = lower.strip_suffix("kb").or(lower.strip_suffix("k")) {
        (d, 1024usize)
    } else if let Some(d) = lower.strip_suffix("mb").or(lower.strip_suffix("m")) {
        (d, 1024 * 1024)
    } else if let Some(d) = lower.strip_suffix("gb").or(lower.strip_suffix("g")) {
        (d, 1024 * 1024 * 1024)
    } else {
        (lower.as_str(), 1usize)
    };
    let n: usize = digits.trim().parse().map_err(|_| {
        format!("expected a non-negative integer (optionally with a k/m/g suffix), got {raw:?}")
    })?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("value {raw:?} overflows"))
}

/// Reads an env var through [`parse_size`]. Malformed values are
/// *rejected with a one-line warning* — never silently coerced to a
/// default — and reported as `None`, same as an unset var.
pub(crate) fn env_size(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match parse_size(&raw) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("warning: ignoring {name}={raw:?}: {e}");
            None
        }
    }
}

// ---------------------------------------------------------------------------
// The spill tier
// ---------------------------------------------------------------------------

/// On-disk record framing: `[magic u32][chunk u32][gen u64][len u32]
/// [fnv1a32(payload) u32]`, all little-endian, payload follows.
pub(crate) const RECORD_MAGIC: u32 = 0x5243_4651; // "QCFR" in LE byte order
/// Bytes of the per-record header.
pub(crate) const RECORD_HEADER: usize = 24;

/// One live record in the append-log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SpillEntry {
    /// Byte offset of the record's *payload* (the sealed frame), so raw
    /// readers stay oblivious to the header in front of it.
    pub offset: u64,
    pub len: u32,
    /// Monotone re-spill generation; guards against stale prefetches.
    pub gen: u64,
}

/// Disambiguates spill files of multiple states in one process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Serializes one record header in front of `payload`.
fn push_record_header(rec: &mut Vec<u8>, chunk: u32, gen: u64, payload: &[u8]) {
    rec.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    rec.extend_from_slice(&chunk.to_le_bytes());
    rec.extend_from_slice(&gen.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&fnv1a32(payload).to_le_bytes());
}

/// Reads as many bytes as the file still has, leaving the rest zero:
/// a torn tail reads back as zeros, which the sealed frame's checksum
/// rejects downstream instead of turning the read into a hard error.
fn read_zero_padded(f: &mut File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    f.seek(SeekFrom::Start(offset))?;
    let mut filled = 0;
    while filled < buf.len() {
        match f.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    buf[filled..].fill(0);
    Ok(())
}

// ---------------------------------------------------------------------------
// Stale-file hygiene (crash-leftover spill logs and checkpoint temps)
// ---------------------------------------------------------------------------

/// The creating pid encoded in a spill-log or checkpoint-temp filename
/// (`qcf-spill-<pid>-<seq>.log`, `<snapshot>.tmp.<pid>`), if any.
fn stale_owner(name: &str) -> Option<u32> {
    if let Some(rest) = name.strip_prefix("qcf-spill-") {
        return rest.split('-').next()?.parse().ok();
    }
    if let Some(pos) = name.rfind(".tmp.") {
        return name[pos + 5..].parse().ok();
    }
    None
}

/// True when `pid` still runs. Without procfs we cannot tell, so we
/// claim alive — hygiene must never delete a live process's files.
fn pid_alive(pid: u32) -> bool {
    if !Path::new("/proc/self").exists() {
        return true;
    }
    Path::new("/proc").join(pid.to_string()).exists()
}

/// Removes crash leftovers in `dir`: spill logs and checkpoint temps
/// whose creating process is dead. Returns how many files went away.
pub fn sweep_stale_dir(dir: &Path) -> usize {
    let own = std::process::id();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = stale_owner(name) else {
            continue;
        };
        if pid == own || pid_alive(pid) {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Once per process, on the first spill-file creation: sweep the temp
/// dir for leftovers of crashed runs.
fn sweep_stale_temp_once() {
    static SWEEP: Once = Once::new();
    SWEEP.call_once(|| {
        sweep_stale_dir(&std::env::temp_dir());
    });
}

/// The per-state disk tier. Inert (no file) until the first spill.
pub(crate) struct SpillTier {
    path: PathBuf,
    /// Lazily created; behind a mutex so `&self` readers
    /// (`to_statevector`, `maxcut_energy`, `norm_sq`) can seek + read.
    file: Option<Mutex<File>>,
    index: Vec<Option<SpillEntry>>,
    end: u64,
    live_bytes: u64,
    next_gen: u64,
    /// Simulated per-read device latency (`QCF_SPILL_LATENCY_US`).
    pub latency_us: u64,
    /// Set after an I/O failure: stop spilling, keep simulating in RAM.
    pub disabled: bool,
}

impl SpillTier {
    pub fn new(n_chunks: usize) -> Self {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("qcf-spill-{}-{seq}.log", std::process::id()));
        SpillTier {
            path,
            file: None,
            index: vec![None; n_chunks],
            end: 0,
            live_bytes: 0,
            next_gen: 1,
            latency_us: env_size("QCF_SPILL_LATENCY_US")
                .map(|v| v as u64)
                .unwrap_or(0),
            disabled: false,
        }
    }

    /// Creates the spill file if it does not exist yet; returns its path.
    /// The first creation in a process also sweeps the temp dir for
    /// crash leftovers of dead runs.
    pub fn ensure_file(&mut self) -> std::io::Result<&Path> {
        if self.file.is_none() {
            sweep_stale_temp_once();
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&self.path)?;
            self.file = Some(Mutex::new(f));
        }
        Ok(&self.path)
    }

    /// Reopens an existing spill log after a crash: scans the record
    /// framing from the start, keeps the highest-generation record per
    /// chunk, and truncates the file at the first torn record (short
    /// header, payload past EOF, or record-checksum mismatch) — the
    /// scan-and-truncate recovery contract. Never panics and never
    /// indexes torn bytes.
    pub fn open_recover(path: &Path, n_chunks: usize) -> std::io::Result<Self> {
        let mut f = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = f.metadata()?.len();
        let mut index: Vec<Option<SpillEntry>> = vec![None; n_chunks];
        let mut pos = 0u64;
        let mut next_gen = 1u64;
        let mut header = [0u8; RECORD_HEADER];
        while pos + RECORD_HEADER as u64 <= file_len {
            f.seek(SeekFrom::Start(pos))?;
            f.read_exact(&mut header)?;
            let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
            let id = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
            let gen = u64::from_le_bytes(header[8..16].try_into().unwrap());
            let len = u32::from_le_bytes(header[16..20].try_into().unwrap());
            let crc = u32::from_le_bytes(header[20..24].try_into().unwrap());
            let payload_off = pos + RECORD_HEADER as u64;
            if magic != RECORD_MAGIC || id >= n_chunks || payload_off + u64::from(len) > file_len {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            f.read_exact(&mut payload)?;
            if fnv1a32(&payload) != crc {
                break;
            }
            let entry = SpillEntry {
                offset: payload_off,
                len,
                gen,
            };
            if index[id].is_none_or(|old| gen > old.gen) {
                index[id] = Some(entry);
            }
            next_gen = next_gen.max(gen + 1);
            pos = payload_off + u64::from(len);
        }
        if pos < file_len {
            f.set_len(pos)?; // drop the torn tail
        }
        let live_bytes = index.iter().flatten().map(|e| u64::from(e.len)).sum();
        Ok(SpillTier {
            path: path.to_path_buf(),
            file: Some(Mutex::new(f)),
            index,
            end: pos,
            live_bytes,
            next_gen,
            latency_us: env_size("QCF_SPILL_LATENCY_US")
                .map(|v| v as u64)
                .unwrap_or(0),
            disabled: false,
        })
    }

    /// Appends `bytes` as chunk `id`'s new on-disk record, superseding any
    /// previous one. Returns the fresh entry. Under the `spill.torn_tail`
    /// fault site the write is cut short (modelling a crash mid-append)
    /// while the index still advances — exactly the state a real torn
    /// append leaves behind for recovery to clean up.
    pub fn append(&mut self, id: usize, bytes: &[u8]) -> std::io::Result<SpillEntry> {
        self.ensure_file()?;
        let file = self.file.as_ref().expect("just ensured");
        let record_start = self.end;
        let gen = self.next_gen;
        let mut rec = Vec::with_capacity(RECORD_HEADER + bytes.len());
        push_record_header(&mut rec, id as u32, gen, bytes);
        rec.extend_from_slice(bytes);
        let write_len = match qcf_telemetry::faults::inject("spill.torn_tail") {
            // Strictly short of a full record: a crash mid-append.
            Some(draw) => (draw as usize) % rec.len(),
            None => rec.len(),
        };
        {
            let mut f = lock_unpoisoned(file);
            f.seek(SeekFrom::Start(record_start))?;
            f.write_all(&rec[..write_len])?;
        }
        let entry = SpillEntry {
            offset: record_start + RECORD_HEADER as u64,
            len: bytes.len() as u32,
            gen,
        };
        self.next_gen += 1;
        self.end = record_start + rec.len() as u64;
        if let Some(old) = self.index[id].replace(entry) {
            self.live_bytes -= u64::from(old.len);
        }
        self.live_bytes += u64::from(entry.len);
        Ok(entry)
    }

    /// Rewrites live records into a fresh log and atomically swaps it
    /// over the old one (write → fsync → rename), dropping dead space.
    /// Generations are preserved, so the stale-prefetch guard stays
    /// monotone across a compaction. Returns the bytes reclaimed.
    ///
    /// Not safe while prefetch workers hold the old file open — the
    /// caller gates on that.
    pub fn compact(&mut self) -> std::io::Result<u64> {
        let Some(file) = self.file.as_ref() else {
            return Ok(0);
        };
        if self.dead_bytes() == 0 {
            return Ok(0);
        }
        let tmp_path = self.path.with_extension("compact");
        let mut out = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        {
            let mut f = lock_unpoisoned(file);
            for (id, slot) in self.index.iter().enumerate() {
                let Some(e) = slot else { continue };
                // Bytes are copied verbatim — a corrupt payload stays
                // corrupt and is still caught by its sealed frame at
                // decode time; compaction must never mask or drop it.
                // (Its record checksum is recomputed over the bytes as
                // read, so the re-scan below indexes it like any other.)
                let mut payload = vec![0u8; e.len as usize];
                read_zero_padded(&mut f, e.offset, &mut payload)?;
                let mut rec = Vec::with_capacity(RECORD_HEADER + payload.len());
                push_record_header(&mut rec, id as u32, e.gen, &payload);
                rec.extend_from_slice(&payload);
                out.write_all(&rec)?;
            }
        }
        out.sync_all()?;
        drop(out);
        std::fs::rename(&tmp_path, &self.path)?;
        let old_end = self.end;
        // Rebuild the index by re-scanning the swapped log through the
        // crash-recovery reader: the old handle still maps the pre-swap
        // inode (so it must be reopened anyway), and the scan doubles as
        // a self-check that the rewrite produced a fully-framed log.
        let mut recovered = SpillTier::open_recover(&self.path, self.index.len())?;
        std::mem::swap(&mut self.file, &mut recovered.file);
        std::mem::swap(&mut self.index, &mut recovered.index);
        self.live_bytes = recovered.live_bytes;
        self.end = recovered.end;
        // Generations stay monotone even if the rewritten log's max gen
        // is behind the in-memory counter (fetched-back chunks).
        self.next_gen = self.next_gen.max(recovered.next_gen);
        // `recovered` shares our live path: repoint it at the (already
        // renamed-away) temp name so its Drop cannot delete the log; it
        // still closes the pre-swap handle it took in the swap above.
        recovered.path = tmp_path;
        Ok(old_end - self.end)
    }

    /// Live payload + header bytes — what a compacted log would occupy.
    fn live_record_bytes(&self) -> u64 {
        self.live_bytes + self.spilled_chunks() as u64 * RECORD_HEADER as u64
    }

    /// Dead (superseded or invalidated) bytes still occupying the log.
    pub fn dead_bytes(&self) -> u64 {
        self.end - self.live_record_bytes()
    }

    /// Total log bytes on disk (live + dead).
    pub fn file_bytes(&self) -> u64 {
        self.end
    }

    /// Compaction policy: the log is at least 4x its live payload and
    /// carries at least 4 KiB of dead space — churn-proportional, so a
    /// short run never pays a rewrite.
    pub fn should_compact(&self) -> bool {
        self.end >= 4 * self.live_record_bytes().max(1) && self.dead_bytes() >= 4096
    }

    /// The live record for chunk `id`, if it is currently spilled.
    pub fn entry(&self, id: usize) -> Option<SpillEntry> {
        self.index.get(id).copied().flatten()
    }

    /// Drops chunk `id`'s record (it is back in RAM or superseded).
    pub fn invalidate(&mut self, id: usize) -> Option<SpillEntry> {
        let old = self.index.get_mut(id)?.take();
        if let Some(e) = old {
            self.live_bytes -= u64::from(e.len);
        }
        old
    }

    /// Synchronous read of `entry`'s frame bytes (applies the simulated
    /// device latency). `&self` so flush-free readers can fetch. A torn
    /// tail reads back zero-padded rather than erroring — the payload's
    /// sealed frame rejects it downstream through the heal chain.
    pub fn read(&self, entry: SpillEntry) -> std::io::Result<Vec<u8>> {
        let file = self
            .file
            .as_ref()
            .ok_or_else(|| std::io::Error::other("spill file not created"))?;
        if self.latency_us > 0 {
            std::thread::sleep(Duration::from_micros(self.latency_us));
        }
        let mut bytes = vec![0u8; entry.len as usize];
        let mut f = lock_unpoisoned(file);
        read_zero_padded(&mut f, entry.offset, &mut bytes)?;
        Ok(bytes)
    }

    /// Bytes of live (non-superseded) spilled frames.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Chunks currently resident on disk.
    pub fn spilled_chunks(&self) -> usize {
        self.index.iter().filter(|e| e.is_some()).count()
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillTier {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

// ---------------------------------------------------------------------------
// Gate-schedule extraction
// ---------------------------------------------------------------------------

/// The exact chunk-touch sequence `CompressedState::apply` will perform
/// for `gates`: low gates touch every chunk in id order; grouped (high)
/// gates gather each group's members in member order. This mirrors
/// `apply_low` / `apply_grouped` — the prefetcher's entire knowledge of
/// the future is this list.
pub(crate) fn touch_schedule(gates: &[Gate], chunk_qubits: usize, n_chunks: usize) -> Vec<usize> {
    let mut sched = Vec::new();
    for gate in gates {
        let (qs, k) = gate.qubits_array();
        let mut high = [0usize; 2];
        let mut nh = 0;
        for &q in &qs[..k] {
            if q >= chunk_qubits {
                high[nh] = q;
                nh += 1;
            }
        }
        if nh == 0 {
            sched.extend(0..n_chunks);
            continue;
        }
        let mut group_bits = [0usize; 2];
        for (j, &q) in high[..nh].iter().enumerate() {
            group_bits[j] = q - chunk_qubits;
        }
        let group_mask: usize = group_bits[..nh].iter().map(|&b| 1usize << b).sum();
        for base in 0..n_chunks {
            if base & group_mask != 0 {
                continue;
            }
            for m in 0..(1usize << nh) {
                let mut id = base;
                for (j, &b) in group_bits[..nh].iter().enumerate() {
                    if (m >> j) & 1 == 1 {
                        id |= 1 << b;
                    }
                }
                sched.push(id);
            }
        }
    }
    sched
}

// ---------------------------------------------------------------------------
// The prefetch pipeline
// ---------------------------------------------------------------------------

/// What a worker delivered for one request.
pub(crate) enum FramePayload {
    /// Frame read *and* decoded off-thread: the main thread skips its
    /// own codec call entirely.
    Decoded {
        bytes: Vec<u8>,
        amps: Vec<Complex64>,
    },
    /// Frame read off-thread; decode left to the main thread (fault
    /// injection armed, or the worker's decode attempt failed).
    Bytes(Vec<u8>),
    /// The read itself failed; fall back to the synchronous path.
    Failed,
}

pub(crate) struct PrefetchRequest {
    pub id: usize,
    pub offset: u64,
    pub len: u32,
    pub gen: u64,
}

struct Slot {
    gen: u64,
    payload: FramePayload,
}

#[derive(Default)]
struct PrefetchInner {
    queue: VecDeque<PrefetchRequest>,
    /// id → requested generation, for everything queued, in flight, or
    /// completed-but-unconsumed. Bounds the window and dedupes requests.
    tracked: HashMap<usize, u64>,
    done: HashMap<usize, Slot>,
    shutdown: bool,
}

/// Queue + completion map shared between the scheduled main thread and
/// the I/O workers.
pub(crate) struct PrefetchShared {
    inner: Mutex<PrefetchInner>,
    cv: Condvar,
}

/// Outcome of consuming a prefetch at the moment the chunk is needed.
pub(crate) enum Consume {
    /// A payload for the wanted generation (a *hit*, even if we waited —
    /// issue/consume points are deterministic, so hit counts are too).
    Ready(FramePayload),
    /// Never requested, request was stale, or the read failed: the
    /// caller fetches synchronously (a *miss*).
    Miss,
}

impl PrefetchShared {
    pub fn new() -> Self {
        PrefetchShared {
            inner: Mutex::new(PrefetchInner::default()),
            cv: Condvar::new(),
        }
    }

    /// Queued + in-flight + completed-unconsumed requests.
    pub fn tracked(&self) -> usize {
        lock_unpoisoned(&self.inner).tracked.len()
    }

    pub fn is_tracked(&self, id: usize) -> bool {
        lock_unpoisoned(&self.inner).tracked.contains_key(&id)
    }

    /// Enqueues a read unless `id` is already tracked.
    pub fn request(&self, req: PrefetchRequest) {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.tracked.contains_key(&req.id) {
            return;
        }
        inner.tracked.insert(req.id, req.gen);
        inner.queue.push_back(req);
        drop(inner);
        self.cv.notify_all();
    }

    /// Worker side: blocks for the next request; `None` on shutdown.
    fn next_request(&self) -> Option<PrefetchRequest> {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(req) = inner.queue.pop_front() {
                return Some(req);
            }
            if inner.shutdown {
                return None;
            }
            inner = self
                .cv
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Worker side: publishes a finished request.
    fn complete(&self, id: usize, gen: u64, payload: FramePayload) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.done.insert(id, Slot { gen, payload });
        drop(inner);
        self.cv.notify_all();
    }

    /// Main-thread side: claims the payload for `(id, want_gen)`. Waits
    /// (bounded) while the request is still in flight; the caller times
    /// this call to account prefetch stall.
    pub fn consume(&self, id: usize, want_gen: u64) -> Consume {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(slot) = inner.done.remove(&id) {
                inner.tracked.remove(&id);
                if slot.gen != want_gen {
                    return Consume::Miss; // re-spilled since requested
                }
                return match slot.payload {
                    FramePayload::Failed => Consume::Miss,
                    p => Consume::Ready(p),
                };
            }
            if !inner.tracked.contains_key(&id) {
                return Consume::Miss; // never requested
            }
            // Queued or in flight: wait for the workers.
            inner = self
                .cv
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Ends the pipeline; workers drain to `None` and exit.
    pub fn shutdown(&self) {
        lock_unpoisoned(&self.inner).shutdown = true;
        self.cv.notify_all();
    }
}

/// Main-thread bookkeeping for one scheduled run: where we are in the
/// touch schedule and the shared pipeline handle.
pub(crate) struct PrefetchCtl {
    pub shared: Arc<PrefetchShared>,
    pub schedule: Vec<usize>,
    pub pos: usize,
}

impl PrefetchCtl {
    /// Advances past the touch of `id`. The schedule is derived from the
    /// same iteration logic `apply` uses, so this is normally a single
    /// step; a short resync scan tolerates drift (prefetch then degrades
    /// to misses rather than breaking anything).
    pub fn advance(&mut self, id: usize) {
        if self.schedule.get(self.pos) == Some(&id) {
            self.pos += 1;
            return;
        }
        let horizon = (self.pos + PREFETCH_LOOKAHEAD).min(self.schedule.len());
        if let Some(off) = self.schedule[self.pos..horizon]
            .iter()
            .position(|&s| s == id)
        {
            self.pos += off + 1;
        }
    }
}

/// One I/O worker: read the frame at the requested offset (after the
/// simulated device latency) and decode it unless fault injection is
/// armed — injection draws must stay on the main thread so exact
/// accounting is single-threaded. Every failure degrades to a payload
/// the main thread can recover from synchronously.
pub(crate) fn prefetch_worker(
    shared: &PrefetchShared,
    path: &Path,
    compressor: &dyn Compressor,
    chunk_len: usize,
    latency_us: u64,
) {
    let mut file = File::open(path).ok();
    let stream = Stream::new(DeviceSpec::a100());
    let mut flat: Vec<f64> = Vec::new();
    while let Some(req) = shared.next_request() {
        if latency_us > 0 {
            std::thread::sleep(Duration::from_micros(latency_us));
        }
        let mut bytes = vec![0u8; req.len as usize];
        let read_ok = match file.as_mut() {
            Some(f) => f
                .seek(SeekFrom::Start(req.offset))
                .and_then(|_| f.read_exact(&mut bytes))
                .is_ok(),
            None => false,
        };
        let payload = if !read_ok {
            FramePayload::Failed
        } else if qcf_telemetry::faults::armed() {
            FramePayload::Bytes(bytes)
        } else {
            let decoded = panic::catch_unwind(AssertUnwindSafe(|| {
                let mut amps: Vec<Complex64> = Vec::new();
                crate::compressed_state::decode_chunk(
                    compressor, &stream, chunk_len, &bytes, &mut flat, &mut amps,
                )
                .map(|()| amps)
            }));
            match decoded {
                Ok(Ok(amps)) => FramePayload::Decoded { bytes, amps },
                _ => FramePayload::Bytes(bytes),
            }
        };
        shared.complete(req.id, req.gen, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_accepts_plain_and_suffixed() {
        assert_eq!(parse_size("0").unwrap(), 0);
        assert_eq!(parse_size("4096").unwrap(), 4096);
        assert_eq!(parse_size(" 64k ").unwrap(), 64 * 1024);
        assert_eq!(parse_size("2MB").unwrap(), 2 * 1024 * 1024);
        assert_eq!(parse_size("1g").unwrap(), 1024 * 1024 * 1024);
    }

    #[test]
    fn parse_size_rejects_malformed() {
        for bad in ["", "  ", "abc", "-3", "12q", "4.5k", "k"] {
            assert!(parse_size(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    /// Malformed env values warn and report `None` — the *caller's*
    /// default applies, never a silently coerced parse.
    #[test]
    fn env_size_rejects_malformed_and_accepts_valid() {
        std::env::set_var("QCF_TEST_SPILL_SIZE_A", "banana");
        assert_eq!(env_size("QCF_TEST_SPILL_SIZE_A"), None);
        std::env::set_var("QCF_TEST_SPILL_SIZE_A", "16k");
        assert_eq!(env_size("QCF_TEST_SPILL_SIZE_A"), Some(16 * 1024));
        std::env::remove_var("QCF_TEST_SPILL_SIZE_A");
        assert_eq!(env_size("QCF_TEST_SPILL_SIZE_A"), None);
    }

    #[test]
    fn append_read_roundtrip_with_generations() {
        let mut tier = SpillTier::new(4);
        let e1 = tier.append(2, b"hello frame").unwrap();
        assert_eq!(tier.spilled_chunks(), 1);
        assert_eq!(tier.live_bytes(), 11);
        assert_eq!(tier.read(e1).unwrap(), b"hello frame");
        // Re-spill supersedes: live bytes track the new record only.
        let e2 = tier.append(2, b"v2").unwrap();
        assert!(e2.gen > e1.gen);
        assert_eq!(tier.live_bytes(), 2);
        assert_eq!(tier.read(e2).unwrap(), b"v2");
        // The old record still physically exists (append-log), but the
        // index no longer points at it.
        assert_eq!(tier.entry(2).unwrap(), e2);
        assert_eq!(tier.invalidate(2), Some(e2));
        assert_eq!(tier.live_bytes(), 0);
        assert_eq!(tier.entry(2), None);
    }

    #[test]
    fn open_recover_rebuilds_index_and_truncates_torn_tail() {
        let mut tier = SpillTier::new(3);
        let _ = tier.append(0, b"alpha").unwrap();
        let _ = tier.append(1, b"beta!").unwrap();
        let e0b = tier.append(0, b"alpha-v2").unwrap(); // supersedes gen 1
        let path = tier.path().to_path_buf();
        let end = tier.file_bytes();
        // Simulate a crash mid-append: a torn record after the last
        // complete one (header + half the payload).
        {
            let mut rec = Vec::new();
            push_record_header(&mut rec, 2, 99, b"torn-payload");
            rec.extend_from_slice(b"torn-p");
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(end)).unwrap();
            f.write_all(&rec).unwrap();
        }
        std::mem::forget(tier); // crash: no Drop, file stays behind
        let rec = SpillTier::open_recover(&path, 3).unwrap();
        assert_eq!(rec.spilled_chunks(), 2);
        assert_eq!(rec.entry(2), None, "torn record must not be indexed");
        assert_eq!(rec.read(rec.entry(0).unwrap()).unwrap(), b"alpha-v2");
        assert_eq!(rec.read(rec.entry(1).unwrap()).unwrap(), b"beta!");
        assert_eq!(rec.entry(0).unwrap().gen, e0b.gen, "generations survive");
        assert_eq!(rec.file_bytes(), end, "torn tail truncated away");
        assert!(rec.next_gen > e0b.gen);
    }

    #[test]
    fn compaction_drops_dead_space_and_preserves_reads() {
        let mut tier = SpillTier::new(2);
        for i in 0..200u32 {
            tier.append(0, format!("record-{i:04}").as_bytes()).unwrap();
        }
        let e1 = tier.append(1, b"keeper").unwrap();
        assert!(tier.should_compact(), "200x churn must trip the policy");
        let before = tier.file_bytes();
        let reclaimed = tier.compact().unwrap();
        assert!(reclaimed > 0);
        assert_eq!(tier.file_bytes(), before - reclaimed);
        assert_eq!(tier.dead_bytes(), 0);
        assert_eq!(tier.read(tier.entry(0).unwrap()).unwrap(), b"record-0199");
        assert_eq!(tier.read(tier.entry(1).unwrap()).unwrap(), b"keeper");
        assert_eq!(tier.entry(1).unwrap().gen, e1.gen, "gens preserved");
        assert!(!tier.should_compact());
        // The swapped file is also recoverable as-is.
        let on_disk = std::fs::metadata(tier.path()).unwrap().len();
        assert_eq!(on_disk, tier.file_bytes());
    }

    #[test]
    fn sweep_removes_only_dead_owners_files() {
        let dir = std::env::temp_dir().join("qcf-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let own = std::process::id();
        // u32::MAX is above any real pid_max; it can never be alive.
        let dead = dir.join("qcf-spill-4294967295-0.log");
        let dead_tmp = dir.join("snap.qcfs.tmp.4294967295");
        let live = dir.join(format!("qcf-spill-{own}-7.log"));
        let unrelated = dir.join("keep.log");
        for p in [&dead, &dead_tmp, &live, &unrelated] {
            std::fs::write(p, b"x").unwrap();
        }
        let removed = sweep_stale_dir(&dir);
        assert_eq!(removed, 2);
        assert!(!dead.exists() && !dead_tmp.exists());
        assert!(live.exists() && unrelated.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_fault_cuts_the_write_short_for_recovery_to_drop() {
        use qcf_telemetry::faults;
        let _guard = faults::chaos_guard();
        let mut tier = SpillTier::new(2);
        tier.append(0, b"complete-record").unwrap();
        faults::arm_from_spec("seed=7,spill.torn_tail@1").unwrap();
        let torn = tier.append(1, b"doomed-record!!").unwrap();
        faults::disarm();
        // In-session: the read zero-pads and the (absent) payload would
        // fail its sealed-frame checksum downstream.
        let bytes = tier.read(torn).unwrap();
        assert_eq!(bytes.len(), 15);
        assert_ne!(bytes, b"doomed-record!!");
        // Across a crash: recovery keeps the intact record, drops the torn.
        let path = tier.path().to_path_buf();
        std::mem::forget(tier);
        let rec = SpillTier::open_recover(&path, 2).unwrap();
        assert_eq!(rec.spilled_chunks(), 1);
        assert_eq!(rec.read(rec.entry(0).unwrap()).unwrap(), b"complete-record");
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let path = {
            let mut tier = SpillTier::new(1);
            tier.append(0, b"x").unwrap();
            let p = tier.path().to_path_buf();
            assert!(p.exists());
            p
        };
        assert!(!path.exists());
    }

    #[test]
    fn touch_schedule_mirrors_low_and_grouped_order() {
        // 3 chunk qubits over 5 qubits → 4 chunks.
        let gates = [Gate::H(0), Gate::Cnot(0, 3), Gate::Zz(3, 4, 0.5)];
        let sched = touch_schedule(&gates, 3, 4);
        let mut expect = vec![0, 1, 2, 3]; // H(0): low gate, chunk-id order
        expect.extend([0, 1, 2, 3]); // Cnot(0,3): bases {0,2}, members {b, b|1}
        expect.extend([0, 1, 2, 3]); // Zz(3,4): base 0, members 0..4
        assert_eq!(sched, expect);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 8,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// Crash-consistency, exhaustively: append N records, then cut
        /// the log at *every* byte boundary of the tail record (from its
        /// first header byte up to one byte short of complete). Recovery
        /// must always yield exactly the N−1 intact records, payloads
        /// bit-for-bit, with the torn tail truncated away — no panic, no
        /// partial record ever surfacing.
        #[test]
        fn recovery_survives_truncation_at_every_tail_byte(
            payloads in proptest::collection::vec(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 1..40),
                2..6,
            ),
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let n = payloads.len();
            let mut tier = SpillTier::new(n);
            let mut tail_start = 0;
            for (id, p) in payloads.iter().enumerate() {
                tail_start = tier.file_bytes();
                tier.append(id, p).unwrap();
            }
            let end = tier.file_bytes();
            let path = tier.path().to_path_buf();
            std::mem::forget(tier); // crash: no Drop, the log stays behind
            let bytes = std::fs::read(&path).unwrap();
            for cut in tail_start..end {
                let copy = path.with_extension(format!("cut{cut}"));
                std::fs::write(&copy, &bytes[..cut as usize]).unwrap();
                let rec = SpillTier::open_recover(&copy, n).unwrap();
                prop_assert_eq!(rec.spilled_chunks(), n - 1, "cut at {}", cut);
                prop_assert_eq!(rec.entry(n - 1), None, "torn tail indexed at {}", cut);
                for (id, p) in payloads.iter().enumerate().take(n - 1) {
                    let e = rec.entry(id).unwrap();
                    prop_assert_eq!(&rec.read(e).unwrap(), p, "cut at {}", cut);
                }
                prop_assert_eq!(rec.file_bytes(), tail_start, "cut at {}", cut);
                prop_assert!(
                    std::fs::metadata(&copy).unwrap().len() == tail_start,
                    "torn bytes left on disk at cut {}", cut
                );
                drop(rec); // Drop removes the copy
                prop_assert!(!copy.exists());
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn prefetch_queue_dedupes_and_consumes_by_generation() {
        let shared = PrefetchShared::new();
        shared.request(PrefetchRequest {
            id: 3,
            offset: 0,
            len: 4,
            gen: 7,
        });
        shared.request(PrefetchRequest {
            id: 3,
            offset: 0,
            len: 4,
            gen: 7,
        });
        assert_eq!(shared.tracked(), 1);
        let req = shared.next_request().unwrap();
        shared.complete(req.id, req.gen, FramePayload::Bytes(vec![1, 2, 3, 4]));
        match shared.consume(3, 7) {
            Consume::Ready(FramePayload::Bytes(b)) => assert_eq!(b, vec![1, 2, 3, 4]),
            _ => panic!("expected a hit"),
        }
        assert_eq!(shared.tracked(), 0);
        // Stale generation and never-requested are both misses.
        shared.request(PrefetchRequest {
            id: 5,
            offset: 0,
            len: 1,
            gen: 1,
        });
        let req = shared.next_request().unwrap();
        shared.complete(req.id, req.gen, FramePayload::Bytes(vec![9]));
        assert!(matches!(shared.consume(5, 2), Consume::Miss));
        assert!(matches!(shared.consume(42, 1), Consume::Miss));
        shared.shutdown();
        assert!(shared.next_request().is_none());
    }
}
