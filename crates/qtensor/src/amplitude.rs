//! Single-amplitude computation — QTensor's other core primitive.
//!
//! `⟨x|U|0…0⟩` for a fixed bitstring `x` is a tensor network with *no*
//! doubled circuit: one pass of gate tensors capped by `|0⟩` kets at the
//! start and `⟨x_q|` bras at the end. Its treewidth is roughly half the
//! expectation network's, which is why amplitude-based sampling scales
//! further than energy evaluation. Compression hooks plug in identically.

use crate::contraction::{
    contract_network, ContractError, ContractionHook, ContractionStats, NoopHook,
};
use crate::energy::{Simulator, Strategy};
use crate::network::TensorNetwork;
use crate::ordering::InteractionGraph;
use crate::pairwise::contract_greedy;
use qcircuit::Circuit;
use tensornet::{Complex64, Tensor};

/// Builds the amplitude network `⟨bits|circuit|0…0⟩`.
///
/// Bit `q` of `bits` selects qubit `q`'s basis value (little-endian, same
/// convention as [`crate::statevector::StateVector`]).
pub fn amplitude_network(circuit: &Circuit, bits: u64) -> TensorNetwork {
    let n = circuit.n_qubits();
    assert!(n <= 64, "bitstring amplitudes limited to 64 qubits");
    let mut net = TensorNetwork::new(n);
    net.apply_circuit(circuit);
    for q in 0..n {
        let var = net.wire_var(q);
        let one = (bits >> q) & 1 == 1;
        let data = if one {
            vec![Complex64::ZERO, Complex64::ONE]
        } else {
            vec![Complex64::ONE, Complex64::ZERO]
        };
        net.push_tensor(Tensor::qubit(vec![var], data).expect("bra cap"));
    }
    net
}

impl Simulator {
    /// `⟨bits|circuit|0…0⟩`, feeding intermediates to `hook`.
    pub fn amplitude(
        &self,
        circuit: &Circuit,
        bits: u64,
        hook: &mut dyn ContractionHook,
    ) -> Result<(Complex64, ContractionStats), ContractError> {
        let tensors = amplitude_network(circuit, bits).into_tensors();
        match self.strategy {
            Strategy::BucketElimination => {
                let order =
                    InteractionGraph::from_tensors(&tensors).elimination_order(self.heuristic);
                contract_network(tensors, &order, hook)
            }
            Strategy::GreedyPairwise => contract_greedy(tensors, hook),
        }
    }

    /// Probability `|⟨bits|circuit|0…0⟩|²`.
    pub fn probability(&self, circuit: &Circuit, bits: u64) -> Result<f64, ContractError> {
        Ok(self.amplitude(circuit, bits, &mut NoopHook)?.0.norm_sq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;
    use qcircuit::{qaoa_circuit, Gate, Graph, QaoaParams};

    #[test]
    fn bell_state_amplitudes() {
        let c = Circuit::new(2).with(Gate::H(0)).with(Gate::Cnot(0, 1));
        let sim = Simulator::default();
        let h = std::f64::consts::FRAC_1_SQRT_2;
        for (bits, want) in [(0b00u64, h), (0b01, 0.0), (0b10, 0.0), (0b11, h)] {
            let (a, _) = sim.amplitude(&c, bits, &mut NoopHook).unwrap();
            assert!(
                a.approx_eq(Complex64::real(want), 1e-12),
                "bits {bits:02b}: {a:?}"
            );
        }
    }

    #[test]
    fn matches_statevector_on_qaoa() {
        let g = Graph::random_regular(8, 3, 4);
        let params = QaoaParams::new(vec![0.5], vec![0.3]);
        let c = qaoa_circuit(&g, &params);
        let sv = StateVector::run(&c);
        let sim = Simulator::default();
        for bits in [0u64, 1, 37, 200, 255] {
            let (a, _) = sim.amplitude(&c, bits, &mut NoopHook).unwrap();
            let want = sv.amplitudes()[bits as usize];
            assert!(a.approx_eq(want, 1e-10), "bits {bits}: {a:?} vs {want:?}");
        }
    }

    #[test]
    fn probabilities_sum_to_one_small_register() {
        let c = Circuit::new(3)
            .with(Gate::H(0))
            .with(Gate::Ry(1, 0.9))
            .with(Gate::Cnot(0, 2))
            .with(Gate::Zz(1, 2, 0.4));
        let sim = Simulator::default();
        let total: f64 = (0..8u64).map(|b| sim.probability(&c, b).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-10, "total probability {total}");
    }

    #[test]
    fn pairwise_strategy_agrees() {
        let g = Graph::cycle(6);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
        let bucket = Simulator::default();
        let pairwise = Simulator::default().with_strategy(Strategy::GreedyPairwise);
        for bits in [0u64, 21, 63] {
            let (a, _) = bucket.amplitude(&c, bits, &mut NoopHook).unwrap();
            let (b, _) = pairwise.amplitude(&c, bits, &mut NoopHook).unwrap();
            assert!(a.approx_eq(b, 1e-10));
        }
    }

    #[test]
    fn compression_hook_on_amplitudes() {
        use crate::compressed::CompressingHook;
        use compressors::cuszx::CuSzx;
        use compressors::ErrorBound;
        let g = Graph::random_regular(10, 3, 6);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p2());
        let sim = Simulator::default();
        let (exact, _) = sim.amplitude(&c, 5, &mut NoopHook).unwrap();
        let comp = CuSzx::default();
        let mut hook = CompressingHook::new(&comp, ErrorBound::Abs(1e-8), 2);
        let (lossy, _) = sim.amplitude(&c, 5, &mut hook).unwrap();
        assert!(hook.stats.tensors_compressed > 0);
        assert!((exact - lossy).abs() < 1e-4);
    }

    #[test]
    fn amplitude_network_is_single_layer() {
        // No dagger pass: roughly half the tensors of the expectation net.
        let g = Graph::cycle(6);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
        let amp = amplitude_network(&c, 0).into_tensors().len();
        let exp = TensorNetwork::zz_expectation_network(&c, 0, 1)
            .into_tensors()
            .len();
        assert!(amp < exp * 2 / 3, "amplitude {amp} vs expectation {exp}");
    }
}
