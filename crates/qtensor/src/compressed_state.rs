//! Chunk-compressed full-statevector simulation.
//!
//! The memory wall the paper opens with: a dense `2^n` statevector needs
//! `16·2^n` bytes. Prior work from the same group compressed the full state
//! between gate applications; this module provides that workflow as an
//! extension (DESIGN.md lists it as the paper's motivating substrate):
//!
//! * amplitudes live as `2^(n−c)` *chunks* of `2^c`, each stored compressed
//!   with any [`Compressor`] (including the framework);
//! * a gate touching only qubits `< c` updates every chunk independently;
//! * a gate touching high qubits groups 2 (one high) or 4 (two high) chunks,
//!   decompresses the group, applies the gate with the high qubits remapped
//!   onto the group dimension, and recompresses.
//!
//! Each gate application recompresses the chunks it touched, so pointwise
//! error can accumulate per gate; the tests measure the end effect as state
//! fidelity and energy drift vs. the dense oracle (gate fusion to amortize
//! recompressions is an obvious next step and is left future work).

use crate::contraction::ContractError;
use crate::statevector::{apply_gate_to_amplitudes, StateVector};
use compressors::{Compressor, ErrorBound};
use gpu_model::{DeviceSpec, Stream};
use qcf_telemetry::GaugeTrack;
use qcircuit::{Circuit, Gate, Graph};
use tensornet::planes::{as_interleaved, from_interleaved};
use tensornet::Complex64;

/// Accounting for a compressed-state run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateStats {
    /// Chunk (re)compressions performed.
    pub recompressions: u64,
    /// Chunk decompressions performed.
    pub decompressions: u64,
    /// Current compressed bytes across all chunks.
    pub resident_bytes: usize,
    /// Peak compressed bytes observed.
    pub peak_resident_bytes: usize,
}

/// A statevector whose chunks are stored compressed.
pub struct CompressedState<'a> {
    n: usize,
    chunk_qubits: usize,
    chunks: Vec<Vec<u8>>,
    compressor: &'a dyn Compressor,
    bound: ErrorBound,
    stream: Stream,
    /// Resident-bytes level: locally exact per run, mirrored into the
    /// `state.resident_bytes` registry gauge when telemetry is enabled.
    resident: GaugeTrack,
    /// Run accounting.
    pub stats: StateStats,
}

impl<'a> CompressedState<'a> {
    /// `|0…0⟩` over `n` qubits with `2^chunk_qubits`-amplitude chunks.
    ///
    /// # Panics
    /// Panics when `chunk_qubits > n` or `n > 26`.
    pub fn zero(
        n: usize,
        chunk_qubits: usize,
        compressor: &'a dyn Compressor,
        bound: ErrorBound,
    ) -> Result<Self, ContractError> {
        assert!(chunk_qubits <= n, "chunk cannot exceed the register");
        assert!(n <= 26, "compressed state limited to 26 qubits in-process");
        let stream = Stream::new(DeviceSpec::a100());
        let mut state = CompressedState {
            n,
            chunk_qubits,
            chunks: Vec::with_capacity(1usize << (n - chunk_qubits)),
            compressor,
            bound,
            stream,
            resident: qcf_telemetry::registry()
                .gauge("state.resident_bytes")
                .track(),
            stats: StateStats::default(),
        };
        let chunk_len = 1usize << chunk_qubits;
        for chunk_id in 0..(1usize << (n - chunk_qubits)) {
            let mut amps = vec![Complex64::ZERO; chunk_len];
            if chunk_id == 0 {
                amps[0] = Complex64::ONE;
            }
            let bytes = state.compress_chunk(&amps)?;
            state.resident.add(bytes.len() as i64);
            state.chunks.push(bytes);
        }
        state.sync_resident_stats();
        Ok(state)
    }

    /// Copies the tracker's level/peak into the public stats struct.
    fn sync_resident_stats(&mut self) {
        self.stats.resident_bytes = self.resident.value() as usize;
        self.stats.peak_resident_bytes = self.resident.peak() as usize;
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Amplitudes per chunk.
    pub fn chunk_len(&self) -> usize {
        1usize << self.chunk_qubits
    }

    /// Bytes the dense state would need.
    pub fn dense_bytes(&self) -> usize {
        16usize << self.n
    }

    fn compress_chunk(&self, amps: &[Complex64]) -> Result<Vec<u8>, ContractError> {
        self.compressor
            .compress(as_interleaved(amps), self.bound, &self.stream)
            .map_err(|e| ContractError::Hook(format!("chunk compress: {e}")))
    }

    fn decompress_chunk(&self, bytes: &[u8]) -> Result<Vec<Complex64>, ContractError> {
        let flat = self
            .compressor
            .decompress(bytes, &self.stream)
            .map_err(|e| ContractError::Hook(format!("chunk decompress: {e}")))?;
        if flat.len() != self.chunk_len() * 2 {
            return Err(ContractError::Hook("chunk length mismatch".into()));
        }
        Ok(from_interleaved(&flat))
    }

    /// Applies one gate.
    pub fn apply(&mut self, gate: &Gate) -> Result<(), ContractError> {
        let c = self.chunk_qubits;
        let high: Vec<usize> = gate.qubits().iter().copied().filter(|&q| q >= c).collect();
        match high.len() {
            0 => self.apply_low(gate),
            _ => self.apply_grouped(gate, &high),
        }
    }

    /// All gate qubits inside the chunk: every chunk updates independently.
    fn apply_low(&mut self, gate: &Gate) -> Result<(), ContractError> {
        for k in 0..self.chunks.len() {
            let mut amps = self.decompress_chunk(&self.chunks[k])?;
            self.stats.decompressions += 1;
            apply_gate_to_amplitudes(&mut amps, self.chunk_qubits, gate);
            self.replace_chunk(k, &amps)?;
        }
        Ok(())
    }

    /// Some gate qubits are chunk-id bits: group the 2^|high| affected
    /// chunks, remap those qubits onto the group dimension, apply, split.
    fn apply_grouped(&mut self, gate: &Gate, high: &[usize]) -> Result<(), ContractError> {
        let c = self.chunk_qubits;
        let k = high.len(); // 1 or 2
        let chunk_len = self.chunk_len();
        let group_bits: Vec<usize> = high.iter().map(|&q| q - c).collect();

        // Remap: low qubits stay; the j-th high qubit becomes buffer qubit c+j.
        let remapped = gate.map_qubits(|q| {
            if q < c {
                q
            } else {
                let j = high
                    .iter()
                    .position(|&h| h == q)
                    .expect("high qubit listed");
                c + j
            }
        });

        // Enumerate base chunk ids (group bits zero), build each group.
        let n_chunks = self.chunks.len();
        let group_mask: usize = group_bits.iter().map(|&b| 1usize << b).sum();
        for base in 0..n_chunks {
            if base & group_mask != 0 {
                continue;
            }
            // Group member order: j-th bit of the member index = group bit j.
            let members: Vec<usize> = (0..(1usize << k))
                .map(|m| {
                    let mut id = base;
                    for (j, &b) in group_bits.iter().enumerate() {
                        if (m >> j) & 1 == 1 {
                            id |= 1 << b;
                        }
                    }
                    id
                })
                .collect();
            let mut buffer = Vec::with_capacity(chunk_len << k);
            for &id in &members {
                buffer.extend(self.decompress_chunk(&self.chunks[id])?);
                self.stats.decompressions += 1;
            }
            apply_gate_to_amplitudes(&mut buffer, c + k, &remapped);
            for (m, &id) in members.iter().enumerate() {
                self.replace_chunk(id, &buffer[m * chunk_len..(m + 1) * chunk_len])?;
            }
        }
        Ok(())
    }

    fn replace_chunk(&mut self, id: usize, amps: &[Complex64]) -> Result<(), ContractError> {
        let bytes = self.compress_chunk(amps)?;
        self.stats.recompressions += 1;
        self.resident
            .add(bytes.len() as i64 - self.chunks[id].len() as i64);
        self.chunks[id] = bytes;
        self.sync_resident_stats();
        Ok(())
    }

    /// Runs a whole circuit from `|0…0⟩`.
    pub fn run(
        circuit: &Circuit,
        chunk_qubits: usize,
        compressor: &'a dyn Compressor,
        bound: ErrorBound,
    ) -> Result<Self, ContractError> {
        let mut state = CompressedState::zero(circuit.n_qubits(), chunk_qubits, compressor, bound)?;
        for g in circuit.gates() {
            state.apply(g)?;
        }
        Ok(state)
    }

    /// Materializes the dense state (testing / small n).
    pub fn to_statevector(&self) -> Result<StateVector, ContractError> {
        let mut amps = Vec::with_capacity(1usize << self.n);
        for bytes in &self.chunks {
            amps.extend(self.decompress_chunk(bytes)?);
        }
        StateVector::from_amplitudes(self.n, amps).map_err(|e| ContractError::Hook(e.to_string()))
    }

    /// MaxCut energy computed chunk-by-chunk (never materializes the state).
    pub fn maxcut_energy(&self, graph: &Graph) -> Result<f64, ContractError> {
        let mut energy = 0.0;
        let chunk_len = self.chunk_len();
        for &(a, b) in graph.edges() {
            let (ma, mb) = (1usize << a, 1usize << b);
            let mut zz = 0.0;
            for (chunk_id, bytes) in self.chunks.iter().enumerate() {
                let amps = self.decompress_chunk(bytes)?;
                let base = chunk_id * chunk_len;
                for (i, amp) in amps.iter().enumerate() {
                    let g = base + i;
                    let sign = if ((g & ma != 0) as u8) ^ ((g & mb != 0) as u8) == 1 {
                        -1.0
                    } else {
                        1.0
                    };
                    zz += sign * amp.norm_sq();
                }
            }
            energy += 0.5 * (1.0 - zz);
        }
        Ok(energy)
    }

    /// Squared norm (drifts from 1 with the bound; a fidelity proxy).
    pub fn norm_sq(&self) -> Result<f64, ContractError> {
        let mut s = 0.0;
        for bytes in &self.chunks {
            s += self
                .decompress_chunk(bytes)?
                .iter()
                .map(|a| a.norm_sq())
                .sum::<f64>();
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compressors::dummy::Memcpy;
    use qcircuit::{qaoa_circuit, QaoaParams};

    fn qaoa(n: usize, seed: u64) -> (Circuit, Graph) {
        let g = Graph::random_regular(n, 3, seed);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
        (c, g)
    }

    #[test]
    fn lossless_chunked_equals_dense() {
        let (circuit, graph) = qaoa(8, 3);
        let comp = Memcpy;
        for chunk_qubits in [2usize, 4, 8] {
            let cs =
                CompressedState::run(&circuit, chunk_qubits, &comp, ErrorBound::Abs(1e-3)).unwrap();
            let dense = StateVector::run(&circuit);
            let materialized = cs.to_statevector().unwrap();
            assert!(
                (materialized.fidelity(&dense) - 1.0).abs() < 1e-12,
                "chunk_qubits={chunk_qubits}"
            );
            assert!(
                (cs.maxcut_energy(&graph).unwrap() - dense.maxcut_energy(&graph)).abs() < 1e-10
            );
        }
    }

    #[test]
    fn high_qubit_gates_cross_chunks_correctly() {
        // All entanglers across the chunk boundary.
        let comp = Memcpy;
        let circuit = Circuit::new(6)
            .with(Gate::H(0))
            .with(Gate::Cnot(0, 5))
            .with(Gate::Zz(1, 4, 0.7))
            .with(Gate::Swap(2, 5))
            .with(Gate::Cnot(4, 3));
        let cs = CompressedState::run(&circuit, 2, &comp, ErrorBound::Abs(1e-6)).unwrap();
        let dense = StateVector::run(&circuit);
        assert!((cs.to_statevector().unwrap().fidelity(&dense) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_high_qubit_gate() {
        let comp = Memcpy;
        let circuit = Circuit::new(6)
            .with(Gate::H(4))
            .with(Gate::H(5))
            .with(Gate::Cnot(5, 4))
            .with(Gate::Zz(4, 5, 0.3));
        let cs = CompressedState::run(&circuit, 3, &comp, ErrorBound::Abs(1e-6)).unwrap();
        let dense = StateVector::run(&circuit);
        assert!((cs.to_statevector().unwrap().fidelity(&dense) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lossy_state_keeps_high_fidelity() {
        let (circuit, graph) = qaoa(10, 5);
        let comp = compressors::cuszx::CuSzx::default();
        let cs = CompressedState::run(&circuit, 5, &comp, ErrorBound::Abs(1e-7)).unwrap();
        let dense = StateVector::run(&circuit);
        let f = cs.to_statevector().unwrap().fidelity(&dense);
        assert!(f > 0.999, "fidelity {f}");
        let e = cs.maxcut_energy(&graph).unwrap();
        assert!((e - dense.maxcut_energy(&graph)).abs() / dense.maxcut_energy(&graph) < 0.01);
        assert!((cs.norm_sq().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn stats_track_resident_bytes() {
        let (circuit, _) = qaoa(8, 7);
        let comp = compressors::cuszx::CuSzx::default();
        let cs = CompressedState::run(&circuit, 4, &comp, ErrorBound::Abs(1e-6)).unwrap();
        assert!(cs.stats.recompressions > 0);
        assert!(cs.stats.decompressions > 0);
        assert!(cs.stats.resident_bytes > 0);
        assert!(cs.stats.peak_resident_bytes >= cs.stats.resident_bytes);
    }

    #[test]
    fn zero_state_compresses_massively() {
        let comp = compressors::cuszx::CuSzx::default();
        let cs = CompressedState::zero(16, 10, &comp, ErrorBound::Abs(1e-8)).unwrap();
        // 2^16 amplitudes = 1 MiB dense; all-zero chunks are near-free.
        assert!(
            cs.stats.resident_bytes < cs.dense_bytes() / 50,
            "resident {} vs dense {}",
            cs.stats.resident_bytes,
            cs.dense_bytes()
        );
    }
}
