//! Chunk-compressed full-statevector simulation.
//!
//! The memory wall the paper opens with: a dense `2^n` statevector needs
//! `16·2^n` bytes. Prior work from the same group compressed the full state
//! between gate applications; this module provides that workflow as an
//! extension (DESIGN.md lists it as the paper's motivating substrate):
//!
//! * amplitudes live as `2^(n−c)` *chunks* of `2^c`, each stored compressed
//!   with any [`Compressor`] (including the framework);
//! * a gate touching only qubits `< c` updates every chunk independently;
//! * a gate touching high qubits groups 2 (one high) or 4 (two high) chunks,
//!   decompresses the group, applies the gate with the high qubits remapped
//!   onto the group dimension, and recompresses.
//!
//! A small **write-back chunk cache** keeps recently touched chunks
//! decompressed: gates mutate the cached amplitudes in place, and a dirty
//! chunk is re-quantized only when it is evicted or flushed. Besides
//! skipping codec work on hits, this bounds lossy error — while a chunk is
//! resident it accumulates gates at full f64 precision and pays the
//! quantization error **once** per residency instead of once per gate.
//! Capacity comes from `QCF_CHUNK_CACHE` (chunks; `0` disables caching and
//! restores the decompress → apply → recompress flow per gate).
//!
//! The tests measure the end effect as state fidelity and energy drift vs.
//! the dense oracle.

use crate::checkpoint::{self, CkptError};
use crate::contraction::ContractError;
use crate::ledger::{ChunkRecord, ErrorLedger, LedgerSummary};
use crate::spill::{self, Consume, FramePayload, PrefetchCtl, PrefetchRequest, SpillTier};
use crate::statevector::{apply_gate_to_amplitudes, StateVector};
use compressors::traits::value_range;
use compressors::{Compressor, CompressorKind, ErrorBound};
use gpu_model::{DeviceSpec, Stream};
use qcf_telemetry::journal::{self, EventKind};
use qcf_telemetry::{Counter, Gauge, GaugeTrack, Histogram};
use qcircuit::{Circuit, Gate, Graph};
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use tensornet::planes::{as_interleaved, from_interleaved};
use tensornet::Complex64;

/// Accounting for a compressed-state run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateStats {
    /// Chunk (re)compressions performed.
    pub recompressions: u64,
    /// Chunk decompressions performed.
    pub decompressions: u64,
    /// Current compressed bytes across all chunks.
    pub resident_bytes: usize,
    /// Peak compressed bytes observed.
    pub peak_resident_bytes: usize,
    /// Chunk-cache hits (gate applied to cached amplitudes, no codec work).
    pub cache_hits: u64,
    /// Chunk-cache misses (chunk had to be decompressed).
    pub cache_misses: u64,
    /// Dirty chunks recompressed on eviction or flush.
    pub writebacks: u64,
    /// Compressed frames spilled from RAM to the disk tier.
    pub spills: u64,
    /// Compressed frames fetched back from the disk tier on the data
    /// path (read-only scans like `maxcut_energy` read the disk tier in
    /// place and are counted only in the `state.spill.reads` counter).
    pub fetches: u64,
    /// Current live bytes on the disk tier.
    pub spilled_bytes: usize,
    /// Disk-tier fetches served by the async prefetch pipeline.
    pub prefetch_hits: u64,
    /// Disk-tier fetches that fell back to a synchronous read.
    pub prefetch_misses: u64,
    /// Microseconds the apply path spent blocked waiting on disk-tier
    /// data (prefetch waits + synchronous fallback reads).
    pub prefetch_stall_us: u64,
    /// Spill-log compaction passes that actually rewrote the file.
    pub compactions: u64,
    /// Dead bytes reclaimed from the spill log across those passes.
    pub spill_reclaimed_bytes: u64,
}

/// Fault accounting for a compressed-state run: what went wrong and how
/// each failure was absorbed. Exact regardless of `QCF_TELEMETRY` (like
/// [`StateStats`]); mirrored into `state.faults.*` registry counters.
///
/// The recovery policy chain on a failed chunk decode is, in order:
///
/// 1. **bounded retry** — one immediate re-decode (heals transient faults:
///    an injected decode error, a panicked worker mid-kernel);
/// 2. **cache repair** — if the chunk is resident in the write-back cache,
///    its amplitudes are ground truth: re-encode them over the poisoned
///    bytes;
/// 3. **quarantine** — the chunk is zero-filled, the lost squared norm is
///    folded into the error ledger, and the simulation continues degraded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Chunk decode failures observed (checksum mismatch, corrupt stream,
    /// injected decode error, worker panic during decode).
    pub decode_errors: u64,
    /// Failures healed by an immediate bounded retry (decode or encode).
    pub retries_ok: u64,
    /// Failed decodes healed by re-encoding resident cached amplitudes.
    pub cache_repairs: u64,
    /// Chunks quarantined (zero-filled) after recovery was exhausted.
    pub quarantines: u64,
    /// Worker panics converted into per-chunk failures.
    pub worker_panics: u64,
    /// Total squared amplitude norm lost to quarantine zero-fills.
    pub lost_norm_sq: f64,
}

/// Registry mirrors of [`FaultStats`].
struct FaultCounters {
    decode_errors: Arc<Counter>,
    retries_ok: Arc<Counter>,
    cache_repairs: Arc<Counter>,
    quarantines: Arc<Counter>,
    worker_panics: Arc<Counter>,
}

impl FaultCounters {
    fn new() -> Self {
        let reg = qcf_telemetry::registry();
        FaultCounters {
            decode_errors: reg.counter("state.faults.decode_errors"),
            retries_ok: reg.counter("state.faults.retries_ok"),
            cache_repairs: reg.counter("state.faults.cache_repairs"),
            quarantines: reg.counter("state.faults.quarantines"),
            worker_panics: reg.counter("state.faults.worker_panics"),
        }
    }
}

/// Registry mirrors of the disk-tier stats (`state.spill.*`,
/// `state.prefetch.*`).
struct SpillCounters {
    writes: Arc<Counter>,
    reads: Arc<Counter>,
    bytes: Arc<Counter>,
    live_bytes: GaugeTrack,
    /// Dead (superseded-record) bytes in the spill log — the level the
    /// `capacity.spill_dead` SLO watches; compaction drives it back down.
    dead_bytes: Arc<Gauge>,
    compactions: Arc<Counter>,
    prefetch_hits: Arc<Counter>,
    prefetch_misses: Arc<Counter>,
    stall_us: Arc<Counter>,
}

impl SpillCounters {
    fn new() -> Self {
        let reg = qcf_telemetry::registry();
        SpillCounters {
            writes: reg.counter("state.spill.writes"),
            reads: reg.counter("state.spill.reads"),
            bytes: reg.counter("state.spill.bytes"),
            live_bytes: reg.gauge("state.spill.live_bytes").track(),
            dead_bytes: reg.gauge("state.spill.dead_bytes"),
            compactions: reg.counter("state.spill.compactions"),
            prefetch_hits: reg.counter("state.prefetch.hits"),
            prefetch_misses: reg.counter("state.prefetch.misses"),
            stall_us: reg.counter("state.prefetch.stall_us"),
        }
    }
}

/// Registry mirrors of the durable-snapshot layer (`state.ckpt.*`).
struct CkptCounters {
    writes: Arc<Counter>,
    bytes: Arc<Counter>,
    restores: Arc<Counter>,
}

impl CkptCounters {
    fn new() -> Self {
        let reg = qcf_telemetry::registry();
        CkptCounters {
            writes: reg.counter("state.ckpt.writes"),
            bytes: reg.counter("state.ckpt.bytes"),
            restores: reg.counter("state.ckpt.restores"),
        }
    }
}

/// Where the RAM tiers stand relative to the disk tier (`qcfz state`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierBreakdown {
    /// Decompressed amplitudes resident in the write-back cache.
    pub cached_amp_bytes: usize,
    /// Compressed frames held in RAM.
    pub ram_compressed_bytes: usize,
    /// Live compressed frames on the disk tier.
    pub spilled_bytes: usize,
    /// Chunks currently living on the disk tier.
    pub spilled_chunks: usize,
    /// Total spill-log bytes on disk (live records plus dead space the
    /// next compaction will reclaim).
    pub spill_file_bytes: usize,
}

/// Microsecond bucket bounds for the per-chunk stage latency histograms:
/// roughly log-spaced from sub-10µs gate kernels up to the 10ms+ tail a
/// faulted decode retry can hit; slower events land in the overflow bucket.
const LATENCY_BOUNDS_US: [f64; 10] = [
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
];

/// Cached handles for the `state.*_us` latency histograms, resolved once at
/// construction (same idiom as [`FaultCounters`]) so the hot path never
/// takes the registry lock. `Histogram::observe` is lock-free and
/// allocation-free, which keeps the warm apply path inside the
/// zero-allocation gate; with telemetry disabled no clock is read at all.
struct StateLatency {
    apply_us: Arc<Histogram>,
    encode_us: Arc<Histogram>,
    decode_us: Arc<Histogram>,
}

impl StateLatency {
    fn new() -> Self {
        let reg = qcf_telemetry::registry();
        StateLatency {
            apply_us: reg.histogram("state.apply_us", &LATENCY_BOUNDS_US),
            encode_us: reg.histogram("state.encode_us", &LATENCY_BOUNDS_US),
            decode_us: reg.histogram("state.decode_us", &LATENCY_BOUNDS_US),
        }
    }
}

/// Starts a latency measurement iff telemetry is enabled (one relaxed load
/// on the disabled path, no clock read).
#[inline]
fn lat_start() -> Option<Instant> {
    if qcf_telemetry::enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Ends a latency measurement started by [`lat_start`].
#[inline]
fn lat_end(hist: &Histogram, t0: Option<Instant>) {
    if let Some(t0) = t0 {
        hist.observe(t0.elapsed().as_secs_f64() * 1e6);
    }
}

/// Result of a [`CompressedState::verify`] scrub.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Chunks scrubbed.
    pub chunks: usize,
    /// Chunks that decoded cleanly on the first attempt.
    pub clean: usize,
    /// Chunks that failed once but were healed (retry or cache repair).
    pub healed: usize,
    /// Chunks zero-filled because recovery was exhausted.
    pub quarantined: usize,
    /// Chunks whose measured error exceeds their ledger bound — a codec
    /// violating its own error contract.
    pub ledger_breaches: usize,
}

impl VerifyReport {
    /// True when every chunk decoded cleanly and no ledger bound was
    /// breached.
    pub fn all_clean(&self) -> bool {
        self.clean == self.chunks && self.ledger_breaches == 0
    }

    /// Corruptions the scrub detected (chunks that did not decode cleanly).
    pub fn detected(&self) -> usize {
        self.healed + self.quarantined
    }
}

/// Default write-back cache capacity in chunks (see `QCF_CHUNK_CACHE`).
const DEFAULT_CHUNK_CACHE: usize = 8;

/// `QCF_CHUNK_CACHE` capacity. Malformed values are rejected with a
/// one-line warning (see [`spill::env_size`]) and the default applies.
fn env_cache_capacity() -> usize {
    spill::env_size("QCF_CHUNK_CACHE").unwrap_or(DEFAULT_CHUNK_CACHE)
}

/// `QCF_LEDGER_MEASURE=1` makes every lossy write-back also decode its own
/// output and record the *measured* max-abs-error in the ledger — a
/// round-trip per requant, so off by default.
fn env_measure_err() -> bool {
    std::env::var("QCF_LEDGER_MEASURE")
        .map(|v| {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("off"))
        })
        .unwrap_or(false)
}

/// One resident decompressed chunk.
#[derive(Debug)]
struct CacheEntry {
    id: usize,
    amps: Vec<Complex64>,
    dirty: bool,
    stamp: u64,
}

/// Write-back LRU over decompressed chunks. Deliberately tiny: capacities
/// are single digits, so a linear scan beats any map and allocates nothing.
#[derive(Debug)]
struct ChunkCache {
    cap: usize,
    tick: u64,
    entries: Vec<CacheEntry>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    writebacks: Arc<Counter>,
}

impl ChunkCache {
    fn new(cap: usize) -> Self {
        let reg = qcf_telemetry::registry();
        ChunkCache {
            cap,
            tick: 0,
            entries: Vec::with_capacity(cap.min(64)),
            hits: reg.counter("state.cache.hit"),
            misses: reg.counter("state.cache.miss"),
            writebacks: reg.counter("state.cache.writeback"),
        }
    }

    /// Mutable lookup; bumps the LRU stamp on hit.
    fn lookup(&mut self, id: usize) -> Option<&mut CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.iter_mut().find(|e| e.id == id)?;
        e.stamp = tick;
        Some(e)
    }

    /// Read-only lookup for `&self` readers: no LRU update, but dirty
    /// cached amplitudes stay visible without flushing.
    fn peek(&self, id: usize) -> Option<&[Complex64]> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| &e.amps[..])
    }

    /// Inserts `id` (which must not be resident). At capacity the
    /// least-recently-used entry is evicted and returned so the caller can
    /// write it back (if dirty) and recycle its buffer.
    fn insert(
        &mut self,
        id: usize,
        amps: Vec<Complex64>,
        dirty: bool,
    ) -> Option<(usize, Vec<Complex64>, bool)> {
        debug_assert!(self.cap > 0, "insert into disabled cache");
        debug_assert!(self.peek(id).is_none(), "duplicate cache insert");
        self.tick += 1;
        let entry = CacheEntry {
            id,
            amps,
            dirty,
            stamp: self.tick,
        };
        if self.entries.len() < self.cap {
            self.entries.push(entry);
            return None;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
            .expect("cap > 0 so entries nonempty");
        let old = std::mem::replace(&mut self.entries[victim], entry);
        Some((old.id, old.amps, old.dirty))
    }
}

/// Decodes one compressed chunk into `amps` via the reusable `flat`
/// interleaved scratch — free functions so callers can split borrows
/// across `CompressedState` fields (and the prefetch workers can decode
/// off-thread with exactly the main thread's semantics).
pub(crate) fn decode_chunk(
    compressor: &dyn Compressor,
    stream: &Stream,
    chunk_len: usize,
    bytes: &[u8],
    flat: &mut Vec<f64>,
    amps: &mut Vec<Complex64>,
) -> Result<(), ContractError> {
    compressor
        .decompress_into(bytes, stream, flat)
        .map_err(|e| ContractError::Hook(format!("chunk decompress: {e}")))?;
    if flat.len() != chunk_len * 2 {
        return Err(ContractError::Hook("chunk length mismatch".into()));
    }
    amps.clear();
    amps.reserve(chunk_len);
    amps.extend(flat.chunks_exact(2).map(|c| Complex64::new(c[0], c[1])));
    Ok(())
}

/// What [`CompressedState::fetch_if_spilled`] delivered.
enum Fetched {
    /// The chunk's frame was already in RAM — nothing fetched.
    InRam,
    /// Frame fetched from disk into `chunks[id]`; caller decodes.
    Bytes,
    /// Frame fetched *and* decoded by a prefetch worker; `amps` already
    /// holds the amplitudes.
    Decoded,
}

/// A statevector whose chunks are stored compressed.
pub struct CompressedState<'a> {
    n: usize,
    chunk_qubits: usize,
    chunks: Vec<Vec<u8>>,
    compressor: &'a dyn Compressor,
    bound: ErrorBound,
    stream: Stream,
    /// Resident-bytes level: locally exact per run, mirrored into the
    /// `state.resident_bytes` registry gauge when telemetry is enabled.
    /// Tracks *compressed* bytes actually held in `chunks` — cached dirty
    /// amplitudes update it only at write-back, so it stays exact.
    resident: GaugeTrack,
    /// Write-back LRU of decompressed chunks.
    cache: ChunkCache,
    /// Reused interleaved-f64 scratch for chunk (de)compression.
    flat: Vec<f64>,
    /// Spare amplitude buffer recycled through cache evictions.
    spare: Vec<Complex64>,
    /// Reused gather buffer for high-qubit (grouped) gates.
    group_buf: Vec<Complex64>,
    /// Per-chunk error-budget accounting (see [`crate::ledger`]).
    ledger: ErrorLedger,
    /// Measure actual max-abs-error at each lossy write-back
    /// (`QCF_LEDGER_MEASURE`).
    measure_err: bool,
    /// Squared amplitude norm of each chunk at its last write-back — the
    /// loss estimate recorded when a chunk has to be quarantined.
    chunk_norm: Vec<f64>,
    /// Registry mirrors of `faults`.
    fault_counters: FaultCounters,
    /// Cached `state.*_us` latency histogram handles.
    latency: StateLatency,
    /// The disk tier (inert until the first spill).
    spill_tier: SpillTier,
    /// Registry mirrors of the disk-tier stats.
    spill_counters: SpillCounters,
    /// Registry mirrors of the durable-snapshot stats.
    ckpt_counters: CkptCounters,
    /// Compressed-RAM budget in bytes (`QCF_MEM_BUDGET`); `None` means
    /// unbounded — the disk tier is never used.
    mem_budget: Option<usize>,
    /// Active prefetch pipeline during a scheduled run.
    prefetch: Option<PrefetchCtl>,
    /// Last-touch stamp per chunk — spill coldness, independent of the
    /// (much smaller) cache's LRU.
    touch_stamp: Vec<u64>,
    touch_tick: u64,
    /// Run accounting.
    pub stats: StateStats,
    /// Fault and recovery accounting (see [`FaultStats`]).
    pub faults: FaultStats,
}

impl<'a> CompressedState<'a> {
    /// `|0…0⟩` over `n` qubits with `2^chunk_qubits`-amplitude chunks.
    ///
    /// # Panics
    /// Panics when `chunk_qubits > n` or `n > 26`.
    pub fn zero(
        n: usize,
        chunk_qubits: usize,
        compressor: &'a dyn Compressor,
        bound: ErrorBound,
    ) -> Result<Self, ContractError> {
        assert!(chunk_qubits <= n, "chunk cannot exceed the register");
        assert!(n <= 26, "compressed state limited to 26 qubits in-process");
        let stream = Stream::new(DeviceSpec::a100());
        let mut state = CompressedState {
            n,
            chunk_qubits,
            chunks: Vec::with_capacity(1usize << (n - chunk_qubits)),
            compressor,
            bound,
            stream,
            resident: qcf_telemetry::registry()
                .gauge("state.resident_bytes")
                .track(),
            cache: ChunkCache::new(env_cache_capacity()),
            flat: Vec::new(),
            spare: Vec::new(),
            group_buf: Vec::new(),
            ledger: ErrorLedger::new(1usize << (n - chunk_qubits)),
            measure_err: env_measure_err(),
            chunk_norm: vec![0.0; 1usize << (n - chunk_qubits)],
            fault_counters: FaultCounters::new(),
            latency: StateLatency::new(),
            spill_tier: SpillTier::new(1usize << (n - chunk_qubits)),
            spill_counters: SpillCounters::new(),
            ckpt_counters: CkptCounters::new(),
            mem_budget: spill::env_size("QCF_MEM_BUDGET"),
            prefetch: None,
            touch_stamp: vec![0; 1usize << (n - chunk_qubits)],
            touch_tick: 0,
            stats: StateStats::default(),
            faults: FaultStats::default(),
        };
        let chunk_len = 1usize << chunk_qubits;
        for chunk_id in 0..(1usize << (n - chunk_qubits)) {
            let mut amps = vec![Complex64::ZERO; chunk_len];
            if chunk_id == 0 {
                amps[0] = Complex64::ONE;
            }
            let bytes = state.compress_chunk(&amps)?;
            journal::record(chunk_id as u64, EventKind::Zero, bytes.len() as f64);
            let abs_bound = state.lossy_abs_bound(&amps);
            state.ledger.record_initial(chunk_id, abs_bound);
            state.chunk_norm[chunk_id] = amps.iter().map(|a| a.norm_sq()).sum();
            state.resident.add(bytes.len() as i64);
            state.chunks.push(bytes);
        }
        state.sync_resident_stats();
        state.enforce_budget();
        Ok(state)
    }

    /// Copies the tracker's level/peak into the public stats struct.
    fn sync_resident_stats(&mut self) {
        self.stats.resident_bytes = self.resident.value() as usize;
        self.stats.peak_resident_bytes = self.resident.peak() as usize;
        self.stats.spilled_bytes = self.spill_tier.live_bytes() as usize;
        self.spill_counters
            .dead_bytes
            .set(self.spill_tier.dead_bytes() as i64);
    }

    /// The configured compressed-RAM budget in bytes (`None` = unbounded).
    pub fn mem_budget(&self) -> Option<usize> {
        self.mem_budget
    }

    /// Sets the compressed-RAM budget and immediately re-tiers to honor
    /// it: with `Some(0)` every non-cached compressed frame moves to
    /// disk. `None` stops future spills (already-spilled frames fetch
    /// back lazily on their next touch).
    pub fn set_mem_budget(&mut self, budget: Option<usize>) {
        self.mem_budget = budget;
        self.enforce_budget();
    }

    /// Overrides the simulated per-read disk latency
    /// (`QCF_SPILL_LATENCY_US`) — lets tests and demos model a slow
    /// device deterministically.
    pub fn set_spill_latency_us(&mut self, us: u64) {
        self.spill_tier.latency_us = us;
    }

    /// Current distribution of the state across the three storage tiers.
    pub fn tier_breakdown(&self) -> TierBreakdown {
        TierBreakdown {
            cached_amp_bytes: self
                .cache
                .entries
                .iter()
                .map(|e| e.amps.len() * std::mem::size_of::<Complex64>())
                .sum(),
            ram_compressed_bytes: self.resident.value() as usize,
            spilled_bytes: self.spill_tier.live_bytes() as usize,
            spilled_chunks: self.spill_tier.spilled_chunks(),
            spill_file_bytes: self.spill_tier.file_bytes() as usize,
        }
    }

    /// Spills coldest-first until compressed-in-RAM bytes fit the
    /// budget. Cache-resident chunks are skipped (their RAM bytes are
    /// stale pending write-back — spilling them would persist old data);
    /// the budget is therefore a target the tier converges to after each
    /// write-back, and the working chunk may transiently exceed it.
    fn enforce_budget(&mut self) {
        let Some(budget) = self.mem_budget else {
            return;
        };
        if self.spill_tier.disabled {
            return;
        }
        while (self.resident.value() as usize) > budget {
            let victim = (0..self.chunks.len())
                .filter(|&id| {
                    !self.chunks[id].is_empty()
                        && self.spill_tier.entry(id).is_none()
                        && self.cache.peek(id).is_none()
                })
                .min_by_key(|&id| self.touch_stamp[id]);
            let Some(id) = victim else {
                break;
            };
            if !self.spill_chunk(id) {
                break;
            }
        }
    }

    /// Moves chunk `id`'s compressed frame from RAM to the disk tier.
    /// Returns `false` (and disables the tier) on an I/O failure — the
    /// frame stays in RAM and the simulation degrades to unbounded.
    fn spill_chunk(&mut self, id: usize) -> bool {
        let bytes = std::mem::take(&mut self.chunks[id]);
        // Chaos site: flip one bit in the *on-disk* record only; the RAM
        // copy is dropped, so the corruption lives purely in the disk
        // tier and must be caught by the frame checksum at fetch time.
        // Byte 0 is skipped for the same reason as `state.chunk.bitflip`:
        // clearing the frame-flag bit would fake a legacy-v1 stream, an
        // undetectable fault outside the model.
        let mut flipped;
        let disk: &[u8] = if bytes.len() > 1 {
            if let Some(payload) = qcf_telemetry::faults::inject("state.spill.bitflip") {
                flipped = bytes.clone();
                let bit = 8 + (payload as usize) % ((flipped.len() - 1) * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                &flipped
            } else {
                &bytes
            }
        } else {
            &bytes
        };
        match self.spill_tier.append(id, disk) {
            Ok(entry) => {
                self.resident.add(-(bytes.len() as i64));
                self.stats.spills += 1;
                self.spill_counters.writes.inc();
                self.spill_counters.bytes.add(bytes.len() as u64);
                self.spill_counters.live_bytes.add(i64::from(entry.len));
                journal::record(id as u64, EventKind::Spill, bytes.len() as f64);
                self.sync_resident_stats();
                self.maybe_compact();
                true
            }
            Err(e) => {
                eprintln!("warning: disk spill tier disabled after I/O error: {e}");
                self.spill_tier.disabled = true;
                self.chunks[id] = bytes;
                false
            }
        }
    }

    /// If chunk `id` lives on the disk tier, brings its frame back into
    /// RAM: a prefetched payload is claimed first (*hit* — even when we
    /// wait on an in-flight read, so hit/miss counts depend only on the
    /// deterministic issue/consume schedule, never on timing); otherwise
    /// the frame is read synchronously (*miss*). Either way the bytes
    /// land in `chunks[id]` before any decode, so the recovery chain
    /// treats disk corruption exactly like RAM corruption. A worker that
    /// already decoded the frame returns the amplitudes via `amps`
    /// ([`Fetched::Decoded`]) and the caller skips its own codec call.
    fn fetch_if_spilled(&mut self, id: usize, amps: &mut Vec<Complex64>) -> Fetched {
        let Some(entry) = self.spill_tier.entry(id) else {
            return Fetched::InRam;
        };
        let t0 = Instant::now();
        let claimed = match &self.prefetch {
            Some(ctl) => ctl.shared.consume(id, entry.gen),
            None => Consume::Miss,
        };
        let mut outcome = Fetched::Bytes;
        let (bytes, hit) = match claimed {
            Consume::Ready(FramePayload::Decoded {
                bytes,
                amps: decoded,
            }) => {
                *amps = decoded;
                outcome = Fetched::Decoded;
                (bytes, true)
            }
            Consume::Ready(FramePayload::Bytes(b)) => (b, true),
            Consume::Ready(FramePayload::Failed) | Consume::Miss => {
                // Synchronous fallback. A failed read leaves empty bytes:
                // the decode below fails and the chunk goes through
                // retry → quarantine with exact accounting.
                (self.spill_tier.read(entry).unwrap_or_default(), false)
            }
        };
        let stall = t0.elapsed().as_micros() as u64;
        self.stats.prefetch_stall_us += stall;
        self.spill_counters.stall_us.add(stall);
        if hit {
            self.stats.prefetch_hits += 1;
            self.spill_counters.prefetch_hits.inc();
        } else {
            self.stats.prefetch_misses += 1;
            self.spill_counters.prefetch_misses.inc();
        }
        self.spill_tier.invalidate(id);
        self.spill_counters.live_bytes.add(-i64::from(entry.len));
        self.stats.fetches += 1;
        self.spill_counters.reads.inc();
        journal::record(id as u64, EventKind::Fetch, bytes.len() as f64);
        self.resident.add(bytes.len() as i64);
        self.chunks[id] = bytes;
        self.sync_resident_stats();
        outcome
    }

    /// Bumps chunk `id`'s last-touch stamp and, during a scheduled run,
    /// advances the prefetcher and tops up its lookahead window with
    /// upcoming spilled chunks.
    fn note_touch(&mut self, id: usize) {
        self.touch_tick += 1;
        self.touch_stamp[id] = self.touch_tick;
        let Some(mut ctl) = self.prefetch.take() else {
            return;
        };
        ctl.advance(id);
        let horizon = (ctl.pos + spill::PREFETCH_LOOKAHEAD).min(ctl.schedule.len());
        let mut slots = spill::PREFETCH_WINDOW.saturating_sub(ctl.shared.tracked());
        for &next in &ctl.schedule[ctl.pos..horizon] {
            if slots == 0 {
                break;
            }
            if let Some(entry) = self.spill_tier.entry(next) {
                if !ctl.shared.is_tracked(next) {
                    ctl.shared.request(PrefetchRequest {
                        id: next,
                        offset: entry.offset,
                        len: entry.len,
                        gen: entry.gen,
                    });
                    slots -= 1;
                }
            }
        }
        self.prefetch = Some(ctl);
    }

    /// Applies `gates` with the async prefetch pipeline armed: the
    /// upcoming chunk-touch schedule is derived from the gate list
    /// (exactly mirroring `apply`'s iteration order), and two I/O worker
    /// threads read + decode spilled frames ahead of use so disk latency
    /// overlaps gate compute. Bit-identical to applying the gates one by
    /// one — prefetch only changes *when* frames are read, never what is
    /// computed. Falls back to the plain loop when no budget is set (or
    /// `prefetch` is false: the synchronous-fetch-on-miss baseline).
    pub fn run_scheduled(&mut self, gates: &[Gate], prefetch: bool) -> Result<(), ContractError> {
        let use_prefetch = prefetch
            && self.mem_budget.is_some()
            && !self.spill_tier.disabled
            && self.spill_tier.ensure_file().is_ok();
        if !use_prefetch {
            for g in gates {
                self.apply(g)?;
            }
            return Ok(());
        }
        let schedule = spill::touch_schedule(gates, self.chunk_qubits, self.chunks.len());
        let shared = Arc::new(spill::PrefetchShared::new());
        let path = self.spill_tier.path().to_path_buf();
        let compressor = self.compressor;
        let chunk_len = self.chunk_len();
        let latency_us = self.spill_tier.latency_us;
        self.prefetch = Some(PrefetchCtl {
            shared: Arc::clone(&shared),
            schedule,
            pos: 0,
        });
        let res = std::thread::scope(|s| {
            for _ in 0..spill::PREFETCH_WORKERS {
                let shared = Arc::clone(&shared);
                let path = path.clone();
                s.spawn(move || {
                    spill::prefetch_worker(&shared, &path, compressor, chunk_len, latency_us)
                });
            }
            let res = (|| {
                for g in gates {
                    self.apply(g)?;
                }
                Ok(())
            })();
            shared.shutdown();
            res
        });
        self.prefetch = None;
        // The pipeline blocks compaction for the whole run (workers hold
        // the pre-compaction file handle and offsets); settle the churn
        // it accumulated now that they are gone.
        self.maybe_compact();
        res
    }

    /// Compacts the spill log when the dead-space policy says a rewrite
    /// pays for itself ([`SpillTier::should_compact`]). A no-op while the
    /// prefetch pipeline is armed: its workers read via pre-compaction
    /// offsets on the old file handle. Failures leave the log as it was
    /// (the rewrite goes to a temp file first) and only warn.
    fn maybe_compact(&mut self) {
        if self.prefetch.is_some() || !self.spill_tier.should_compact() {
            return;
        }
        if let Err(e) = self.compact_now() {
            eprintln!("warning: spill compaction failed (log left as-is): {e}");
        }
    }

    /// Forces a spill-log compaction pass regardless of the dead-space
    /// policy (the drills use this). Returns bytes reclaimed; `0` while
    /// a prefetch pipeline is armed (compaction would invalidate its
    /// in-flight offsets).
    pub fn compact_spill(&mut self) -> std::io::Result<u64> {
        if self.prefetch.is_some() {
            return Ok(0);
        }
        self.compact_now()
    }

    fn compact_now(&mut self) -> std::io::Result<u64> {
        let reclaimed = self.spill_tier.compact()?;
        if reclaimed > 0 {
            self.stats.compactions += 1;
            self.stats.spill_reclaimed_bytes += reclaimed;
            self.spill_counters.compactions.inc();
            for id in 0..self.chunks.len() {
                if let Some(e) = self.spill_tier.entry(id) {
                    journal::record(
                        id as u64,
                        EventKind::Compact,
                        (e.len as usize + spill::RECORD_HEADER) as f64,
                    );
                }
            }
            self.sync_resident_stats();
        }
        Ok(reclaimed)
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Amplitudes per chunk.
    pub fn chunk_len(&self) -> usize {
        1usize << self.chunk_qubits
    }

    /// Bytes the dense state would need.
    pub fn dense_bytes(&self) -> usize {
        16usize << self.n
    }

    /// The resolved absolute bound a lossy encode of `amps` is allowed, or
    /// `None` for a lossless codec (same `Rel → Abs` resolution the
    /// error-bounded compressors apply internally).
    fn lossy_abs_bound(&self, amps: &[Complex64]) -> Option<f64> {
        if self.compressor.kind() != CompressorKind::ErrorBounded {
            return None;
        }
        let (min, max) = value_range(as_interleaved(amps));
        Some(self.bound.to_abs(max - min))
    }

    /// The per-chunk error-budget ledger.
    pub fn ledger(&self) -> &ErrorLedger {
        &self.ledger
    }

    /// Aggregate ledger view (requant counts, accumulated bounds).
    pub fn ledger_summary(&self) -> LedgerSummary {
        self.ledger.summary()
    }

    fn compress_chunk(&mut self, amps: &[Complex64]) -> Result<Vec<u8>, ContractError> {
        let compressor = self.compressor;
        let bound = self.bound;
        let stream = &self.stream;
        let encode = || match panic::catch_unwind(AssertUnwindSafe(|| {
            compressor.compress(as_interleaved(amps), bound, stream)
        })) {
            Ok(r) => (
                r.map_err(|e| ContractError::Hook(format!("chunk compress: {e}"))),
                false,
            ),
            Err(_) => (
                Err(ContractError::Hook("worker panic in chunk compress".into())),
                true,
            ),
        };
        let (mut res, p1) = encode();
        let mut panics = u64::from(p1);
        if res.is_err() {
            let (r2, p2) = encode();
            panics += u64::from(p2);
            if r2.is_ok() {
                self.faults.retries_ok += 1;
                self.fault_counters.retries_ok.inc();
            }
            res = r2;
        }
        self.note_worker_panics(panics);
        res
    }

    /// Books `n` worker panics that were converted into per-chunk failures.
    fn note_worker_panics(&mut self, n: u64) {
        if n > 0 {
            self.faults.worker_panics += n;
            self.fault_counters.worker_panics.add(n);
        }
    }

    /// Books a quarantine of chunk `id`, whose last-known squared norm is
    /// lost to the zero-fill.
    fn record_quarantine_loss(&mut self, id: usize) {
        let lost = self.chunk_norm[id];
        self.faults.quarantines += 1;
        self.fault_counters.quarantines.inc();
        self.faults.lost_norm_sq += lost;
        self.ledger.record_quarantine(id, lost);
        journal::record(id as u64, EventKind::Quarantine, lost);
    }

    /// Decompresses chunk `id` for a `&self` reader. Spilled chunks are
    /// read from the disk tier *in place* (counted in `state.spill.reads`
    /// but not unspilled — read-only scans must not mutate the tiers).
    fn decompress_chunk(&self, id: usize) -> Result<Vec<Complex64>, ContractError> {
        let fetched;
        let bytes: &[u8] = match self.spill_tier.entry(id) {
            Some(entry) => {
                fetched = self
                    .spill_tier
                    .read(entry)
                    .map_err(|e| ContractError::Hook(format!("spill read: {e}")))?;
                self.spill_counters.reads.inc();
                &fetched
            }
            None => &self.chunks[id],
        };
        let flat = self
            .compressor
            .decompress(bytes, &self.stream)
            .map_err(|e| ContractError::Hook(format!("chunk decompress: {e}")))?;
        if flat.len() != self.chunk_len() * 2 {
            return Err(ContractError::Hook("chunk length mismatch".into()));
        }
        Ok(from_interleaved(&flat))
    }

    /// One guarded decode attempt of chunk `id` into `amps`. A worker
    /// panic inside the codec kernel is converted into a per-chunk error
    /// (and counted) instead of unwinding through the simulation.
    fn try_decode(&mut self, id: usize, amps: &mut Vec<Complex64>) -> Result<(), ContractError> {
        let chunk_len = self.chunk_len();
        let compressor = self.compressor;
        let stream = &self.stream;
        let bytes = &self.chunks[id];
        let flat = &mut self.flat;
        let t0 = lat_start();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            decode_chunk(compressor, stream, chunk_len, bytes, flat, amps)
        }));
        lat_end(&self.latency.decode_us, t0);
        match caught {
            Ok(r) => r,
            Err(_) => {
                self.note_worker_panics(1);
                Err(ContractError::Hook("worker panic in chunk decode".into()))
            }
        }
    }

    /// Decodes chunk `id` into `amps` through the recovery policy chain
    /// (see [`FaultStats`]): decode → bounded retry → cache repair →
    /// quarantine. Returns `Ok(true)` when `amps` holds real data (clean or
    /// healed), `Ok(false)` when the chunk was quarantined (`amps` zeroed);
    /// an error only when even the quarantine re-encode failed.
    fn decode_healed(
        &mut self,
        id: usize,
        amps: &mut Vec<Complex64>,
    ) -> Result<bool, ContractError> {
        if let Fetched::Decoded = self.fetch_if_spilled(id, amps) {
            // A prefetch worker already decoded the fetched frame (which
            // proves its integrity); skip the redundant main-thread
            // decode but keep the causal record identical.
            journal::record(id as u64, EventKind::Decode, amps.len() as f64);
            return Ok(true);
        }
        if self.try_decode(id, amps).is_ok() {
            journal::record(id as u64, EventKind::Decode, amps.len() as f64);
            return Ok(true);
        }
        self.faults.decode_errors += 1;
        self.fault_counters.decode_errors.inc();
        journal::record(id as u64, EventKind::Fault, self.chunks[id].len() as f64);
        // 1. Bounded retry: transient faults (a panicked worker, an
        //    injected decode error) heal on a second attempt; persistent
        //    byte corruption does not.
        if self.try_decode(id, amps).is_ok() {
            self.faults.retries_ok += 1;
            self.fault_counters.retries_ok.inc();
            // Heal detail: 1 = bounded retry, 2 = cache repair.
            journal::record(id as u64, EventKind::Heal, 1.0);
            return Ok(true);
        }
        // 2. Cache repair: resident amplitudes are ground truth — losslessly
        //    newer than the stored bytes — so re-encode them over the
        //    poisoned buffer.
        if let Some(idx) = self.cache.entries.iter().position(|e| e.id == id) {
            let cached = std::mem::take(&mut self.cache.entries[idx].amps);
            let res = self.write_back(id, &cached);
            amps.clear();
            amps.extend_from_slice(&cached);
            self.cache.entries[idx].amps = cached;
            self.cache.entries[idx].dirty = false;
            res?;
            self.faults.cache_repairs += 1;
            self.fault_counters.cache_repairs.inc();
            journal::record(id as u64, EventKind::Heal, 2.0);
            return Ok(true);
        }
        // 3. Quarantine: zero-fill, account the lost norm, keep simulating.
        self.quarantine_chunk(id, amps)?;
        Ok(false)
    }

    /// Quarantines chunk `id`: `amps` is zero-filled and re-encoded over
    /// the poisoned bytes so later reads decode cleanly, and the lost
    /// squared norm is folded into the ledger.
    fn quarantine_chunk(
        &mut self,
        id: usize,
        amps: &mut Vec<Complex64>,
    ) -> Result<(), ContractError> {
        let chunk_len = self.chunk_len();
        amps.clear();
        amps.resize(chunk_len, Complex64::ZERO);
        self.record_quarantine_loss(id);
        self.write_back(id, amps)
    }

    /// Current write-back cache capacity in chunks.
    pub fn cache_capacity(&self) -> usize {
        self.cache.cap
    }

    /// Resizes the write-back cache; `0` disables it. Flushes and drops
    /// anything currently cached first, so amplitudes are never lost.
    pub fn set_cache_capacity(&mut self, cap: usize) -> Result<(), ContractError> {
        self.flush()?;
        self.cache.entries.clear();
        self.cache.cap = cap;
        Ok(())
    }

    /// Recompresses every dirty cached chunk (write-back), leaving chunks
    /// resident but clean. After this, `stats.resident_bytes` reflects the
    /// latest amplitudes exactly.
    pub fn flush(&mut self) -> Result<(), ContractError> {
        for i in 0..self.cache.entries.len() {
            if !self.cache.entries[i].dirty {
                continue;
            }
            let id = self.cache.entries[i].id;
            let amps = std::mem::take(&mut self.cache.entries[i].amps);
            self.stats.writebacks += 1;
            self.cache.writebacks.inc();
            let res = self.write_back(id, &amps);
            self.cache.entries[i].amps = amps;
            self.cache.entries[i].dirty = false;
            res?;
        }
        Ok(())
    }

    /// Serializes the state into a durable snapshot at `path`, committed
    /// atomically (see [`crate::checkpoint`] for the format and commit
    /// protocol). `app_meta` is a caller-opaque blob returned verbatim by
    /// [`CompressedState::resume`] — `qcfz` stores the circuit recipe and
    /// gate progress there.
    ///
    /// Checkpointing is a durability barrier: dirty cached chunks are
    /// flushed and the cache dropped (the [`set_cache_capacity`] idiom),
    /// so the serialized frames are the exact ground truth the resumed
    /// run re-reads — evolution after a resume is bit-identical to the
    /// uninterrupted run even under a lossy codec, because both sides
    /// continue from the same requantized bytes. Spilled frames are read
    /// from the disk tier in place; the tiers are not otherwise touched.
    ///
    /// Returns total bytes at the committed path.
    ///
    /// [`set_cache_capacity`]: CompressedState::set_cache_capacity
    pub fn checkpoint(&mut self, path: &Path, app_meta: &[u8]) -> Result<u64, CkptError> {
        self.flush().map_err(|e| CkptError::State(e.to_string()))?;
        self.cache.entries.clear();
        let n_chunks = self.chunks.len();
        let mut body = Vec::new();
        body.extend_from_slice(checkpoint::SNAP_MAGIC);
        checkpoint::put_u32(&mut body, self.n as u32);
        checkpoint::put_u32(&mut body, self.chunk_qubits as u32);
        checkpoint::put_u8(&mut body, self.compressor.id());
        let (kind, value) = match self.bound {
            ErrorBound::Abs(v) => (0u8, v),
            ErrorBound::Rel(v) => (1u8, v),
        };
        checkpoint::put_u8(&mut body, kind);
        checkpoint::put_f64(&mut body, value);
        checkpoint::put_u64(&mut body, self.ledger.lossy_events());
        checkpoint::put_u32(&mut body, n_chunks as u32);
        checkpoint::put_u32(&mut body, app_meta.len() as u32);
        body.extend_from_slice(app_meta);
        let mut frame_lens = Vec::with_capacity(n_chunks);
        for id in 0..n_chunks {
            let spilled;
            let frame: &[u8] = match self.spill_tier.entry(id) {
                Some(entry) => {
                    spilled = self.spill_tier.read(entry).map_err(CkptError::Io)?;
                    self.spill_counters.reads.inc();
                    &spilled
                }
                None => &self.chunks[id],
            };
            checkpoint::put_u32(&mut body, frame.len() as u32);
            body.extend_from_slice(frame);
            checkpoint::put_f64(&mut body, self.chunk_norm[id]);
            let rec = &self.ledger.records()[id];
            checkpoint::put_u64(&mut body, rec.encodes);
            checkpoint::put_u64(&mut body, rec.requants);
            checkpoint::put_f64(&mut body, rec.accumulated_bound);
            checkpoint::put_f64(&mut body, rec.last_abs_bound);
            checkpoint::put_f64(&mut body, rec.max_measured_err);
            checkpoint::put_u8(&mut body, u8::from(rec.measured));
            checkpoint::put_u64(&mut body, rec.quarantines);
            frame_lens.push(frame.len());
        }
        checkpoint::put_u64(&mut body, self.faults.decode_errors);
        checkpoint::put_u64(&mut body, self.faults.retries_ok);
        checkpoint::put_u64(&mut body, self.faults.cache_repairs);
        checkpoint::put_u64(&mut body, self.faults.quarantines);
        checkpoint::put_u64(&mut body, self.faults.worker_panics);
        checkpoint::put_f64(&mut body, self.faults.lost_norm_sq);
        let total = checkpoint::write_snapshot(path, &body)?;
        // Journal only after the commit: the causal record reflects what
        // is durably on disk, so a kill-point "crash" records nothing.
        for (id, len) in frame_lens.into_iter().enumerate() {
            journal::record(id as u64, EventKind::Checkpoint, len as f64);
        }
        self.ckpt_counters.writes.inc();
        self.ckpt_counters.bytes.add(total);
        Ok(total)
    }

    /// Reconstructs a state from a snapshot written by
    /// [`CompressedState::checkpoint`], returning it together with the
    /// caller's `app_meta` blob. The snapshot must have been written
    /// under the same codec (`compressor.id()` is checked against the
    /// stored stream id). Sealed frames, chunk norms, the error-budget
    /// ledger, and the fault tally are restored exactly; the cache,
    /// spill tier, and run stats start fresh (re-tiered immediately if
    /// `QCF_MEM_BUDGET` demands it). Registry counters are *not*
    /// back-filled — they count this process's events; the restored
    /// [`FaultStats`]/ledger carry the run's cumulative history.
    pub fn resume(
        path: &Path,
        compressor: &'a dyn Compressor,
    ) -> Result<(Self, Vec<u8>), CkptError> {
        let body = checkpoint::read_snapshot(path)?;
        let mut r = checkpoint::Reader::new(&body);
        if r.take(checkpoint::SNAP_MAGIC.len())? != checkpoint::SNAP_MAGIC {
            return Err(CkptError::Corrupt("bad snapshot magic".into()));
        }
        let n = r.u32()? as usize;
        let chunk_qubits = r.u32()? as usize;
        if n > 26 || chunk_qubits > n {
            return Err(CkptError::Corrupt(format!(
                "implausible geometry: n={n}, chunk_qubits={chunk_qubits}"
            )));
        }
        let stored_id = r.u8()?;
        if stored_id != compressor.id() {
            return Err(CkptError::Corrupt(format!(
                "snapshot written by compressor id {stored_id}, resume offered \"{}\" (id {})",
                compressor.name(),
                compressor.id()
            )));
        }
        let bound = match r.u8()? {
            0 => ErrorBound::Abs(r.f64()?),
            1 => ErrorBound::Rel(r.f64()?),
            k => return Err(CkptError::Corrupt(format!("unknown bound kind {k}"))),
        };
        let lossy_events = r.u64()?;
        let n_chunks = 1usize << (n - chunk_qubits);
        let stored_chunks = r.u32()? as usize;
        if stored_chunks != n_chunks {
            return Err(CkptError::Corrupt(format!(
                "chunk count {stored_chunks} does not match geometry ({n_chunks})"
            )));
        }
        let meta_len = r.u32()? as usize;
        let app_meta = r.take(meta_len)?.to_vec();
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut chunk_norm = Vec::with_capacity(n_chunks);
        let mut records = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let frame_len = r.u32()? as usize;
            chunks.push(r.take(frame_len)?.to_vec());
            chunk_norm.push(r.f64()?);
            records.push(ChunkRecord {
                encodes: r.u64()?,
                requants: r.u64()?,
                accumulated_bound: r.f64()?,
                last_abs_bound: r.f64()?,
                max_measured_err: r.f64()?,
                measured: r.u8()? != 0,
                quarantines: r.u64()?,
            });
        }
        let faults = FaultStats {
            decode_errors: r.u64()?,
            retries_ok: r.u64()?,
            cache_repairs: r.u64()?,
            quarantines: r.u64()?,
            worker_panics: r.u64()?,
            lost_norm_sq: r.f64()?,
        };
        if r.remaining() != 0 {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after a complete parse",
                r.remaining()
            )));
        }
        let mut state = CompressedState {
            n,
            chunk_qubits,
            chunks,
            compressor,
            bound,
            stream: Stream::new(DeviceSpec::a100()),
            resident: qcf_telemetry::registry()
                .gauge("state.resident_bytes")
                .track(),
            cache: ChunkCache::new(env_cache_capacity()),
            flat: Vec::new(),
            spare: Vec::new(),
            group_buf: Vec::new(),
            ledger: ErrorLedger::restore(records, lossy_events),
            measure_err: env_measure_err(),
            chunk_norm,
            fault_counters: FaultCounters::new(),
            latency: StateLatency::new(),
            spill_tier: SpillTier::new(n_chunks),
            spill_counters: SpillCounters::new(),
            ckpt_counters: CkptCounters::new(),
            mem_budget: spill::env_size("QCF_MEM_BUDGET"),
            prefetch: None,
            touch_stamp: vec![0; n_chunks],
            touch_tick: 0,
            stats: StateStats::default(),
            faults,
        };
        for id in 0..state.chunks.len() {
            let len = state.chunks[id].len();
            state.resident.add(len as i64);
            journal::record(id as u64, EventKind::Checkpoint, len as f64);
        }
        state.sync_resident_stats();
        state.enforce_budget();
        state.ckpt_counters.restores.inc();
        Ok((state, app_meta))
    }

    /// Applies one gate.
    pub fn apply(&mut self, gate: &Gate) -> Result<(), ContractError> {
        let c = self.chunk_qubits;
        let (qs, k) = gate.qubits_array();
        let mut high = [0usize; 2];
        let mut nh = 0;
        for &q in &qs[..k] {
            if q >= c {
                high[nh] = q;
                nh += 1;
            }
        }
        let t0 = lat_start();
        let res = match nh {
            0 => self.apply_low(gate),
            _ => self.apply_grouped(gate, &high[..nh]),
        };
        lat_end(&self.latency.apply_us, t0);
        res
    }

    /// All gate qubits inside the chunk: every chunk updates independently.
    fn apply_low(&mut self, gate: &Gate) -> Result<(), ContractError> {
        let cq = self.chunk_qubits;
        for k in 0..self.chunks.len() {
            self.with_chunk_mut(k, |amps| apply_gate_to_amplitudes(amps, cq, gate))?;
        }
        Ok(())
    }

    /// Some gate qubits are chunk-id bits: group the 2^|high| affected
    /// chunks, remap those qubits onto the group dimension, apply, split.
    fn apply_grouped(&mut self, gate: &Gate, high: &[usize]) -> Result<(), ContractError> {
        let c = self.chunk_qubits;
        let k = high.len(); // 1 or 2
        let chunk_len = self.chunk_len();
        let mut group_bits = [0usize; 2];
        for (j, &q) in high.iter().enumerate() {
            group_bits[j] = q - c;
        }
        let group_bits = &group_bits[..k];

        // Remap: low qubits stay; the j-th high qubit becomes buffer qubit c+j.
        let remapped = gate.map_qubits(|q| {
            if q < c {
                q
            } else {
                let j = high
                    .iter()
                    .position(|&h| h == q)
                    .expect("high qubit listed");
                c + j
            }
        });

        // Enumerate base chunk ids (group bits zero), build each group.
        let n_chunks = self.chunks.len();
        let group_mask: usize = group_bits.iter().map(|&b| 1usize << b).sum();
        let mut buffer = std::mem::take(&mut self.group_buf);
        for base in 0..n_chunks {
            if base & group_mask != 0 {
                continue;
            }
            // Group member order: j-th bit of the member index = group bit j.
            let mut members = [0usize; 4];
            for (m, slot) in members.iter_mut().enumerate().take(1 << k) {
                let mut id = base;
                for (j, &b) in group_bits.iter().enumerate() {
                    if (m >> j) & 1 == 1 {
                        id |= 1 << b;
                    }
                }
                *slot = id;
            }
            let members = &members[..1 << k];
            buffer.clear();
            buffer.reserve(chunk_len << k);
            let res = (|| {
                for &id in members {
                    self.gather_chunk(id, &mut buffer)?;
                }
                let gate_ok = panic::catch_unwind(AssertUnwindSafe(|| {
                    apply_gate_to_amplitudes(&mut buffer, c + k, &remapped);
                }))
                .is_ok();
                if gate_ok {
                    // The gate mixed these chunks' amplitudes; redistribute
                    // their accumulated error accordingly (energy-preserving).
                    self.ledger.mix(members);
                } else {
                    // A worker panicked mid-gate: the whole group buffer is
                    // garbage. Quarantine every member and store zeros.
                    self.note_worker_panics(1);
                    buffer.iter_mut().for_each(|a| *a = Complex64::ZERO);
                    for &id in members {
                        self.record_quarantine_loss(id);
                    }
                }
                for (m, &id) in members.iter().enumerate() {
                    self.store_chunk(id, &buffer[m * chunk_len..(m + 1) * chunk_len])?;
                }
                Ok(())
            })();
            if res.is_err() {
                self.group_buf = buffer;
                return res;
            }
        }
        self.group_buf = buffer;
        Ok(())
    }

    /// Runs `f` over chunk `id`'s decoded amplitudes through the write-back
    /// cache. Hits mutate the cached plane in place — no codec work at all
    /// (and, with warm buffers, no heap allocation). Misses decode once and
    /// cache the result dirty; the chunk is re-quantized only on eviction
    /// or [`CompressedState::flush`], so lossy error cannot compound while
    /// it stays resident.
    fn with_chunk_mut(
        &mut self,
        id: usize,
        f: impl FnOnce(&mut [Complex64]),
    ) -> Result<(), ContractError> {
        self.note_touch(id);
        if self.cache.cap == 0 {
            // Cache disabled: classic decompress → apply → recompress.
            let mut amps = std::mem::take(&mut self.spare);
            if let Err(e) = self.decode_healed(id, &mut amps) {
                self.spare = amps;
                return Err(e);
            }
            self.stats.decompressions += 1;
            self.apply_guarded(id, &mut amps, f);
            let res = self.write_back(id, &amps);
            self.spare = amps;
            return res;
        }
        if self.cache.lookup(id).is_some() {
            self.stats.cache_hits += 1;
            self.cache.hits.inc();
            journal::record(id as u64, EventKind::CacheHit, 1.0);
            // Take the amplitudes out of the entry so the unwind guard can
            // quarantine in place without fighting the cache borrow.
            let idx = self
                .cache
                .entries
                .iter()
                .position(|e| e.id == id)
                .expect("entry just looked up");
            let mut amps = std::mem::take(&mut self.cache.entries[idx].amps);
            self.apply_guarded(id, &mut amps, f);
            self.cache.entries[idx].amps = amps;
            self.cache.entries[idx].dirty = true;
            return Ok(());
        }
        self.stats.cache_misses += 1;
        self.cache.misses.inc();
        let mut amps = std::mem::take(&mut self.spare);
        if let Err(e) = self.decode_healed(id, &mut amps) {
            self.spare = amps;
            return Err(e);
        }
        self.stats.decompressions += 1;
        self.apply_guarded(id, &mut amps, f);
        self.insert_cached(id, amps, true)
    }

    /// Applies a gate closure to `amps` under an unwind guard. On a worker
    /// panic the amplitudes are mid-update garbage, so the chunk is
    /// quarantined in place (zero-filled, loss recorded); the caller stores
    /// the zeros through its normal write path.
    fn apply_guarded(
        &mut self,
        id: usize,
        amps: &mut Vec<Complex64>,
        f: impl FnOnce(&mut [Complex64]),
    ) {
        if panic::catch_unwind(AssertUnwindSafe(|| f(amps))).is_err() {
            self.note_worker_panics(1);
            let chunk_len = self.chunk_len();
            amps.clear();
            amps.resize(chunk_len, Complex64::ZERO);
            self.record_quarantine_loss(id);
        }
    }

    /// Reads chunk `id` through the cache, appending its amplitudes to
    /// `dst`. Misses cache the decoded chunk *clean*.
    fn gather_chunk(&mut self, id: usize, dst: &mut Vec<Complex64>) -> Result<(), ContractError> {
        self.note_touch(id);
        if self.cache.cap > 0 {
            if let Some(e) = self.cache.lookup(id) {
                dst.extend_from_slice(&e.amps);
                self.stats.cache_hits += 1;
                self.cache.hits.inc();
                journal::record(id as u64, EventKind::CacheHit, 1.0);
                return Ok(());
            }
            self.stats.cache_misses += 1;
            self.cache.misses.inc();
        }
        let mut amps = std::mem::take(&mut self.spare);
        if let Err(e) = self.decode_healed(id, &mut amps) {
            self.spare = amps;
            return Err(e);
        }
        self.stats.decompressions += 1;
        dst.extend_from_slice(&amps);
        if self.cache.cap > 0 {
            self.insert_cached(id, amps, false)
        } else {
            self.spare = amps;
            Ok(())
        }
    }

    /// Stores `amps` as chunk `id`'s new contents through the cache.
    fn store_chunk(&mut self, id: usize, amps: &[Complex64]) -> Result<(), ContractError> {
        if self.cache.cap == 0 {
            return self.write_back(id, amps);
        }
        if let Some(e) = self.cache.lookup(id) {
            e.amps.clear();
            e.amps.extend_from_slice(amps);
            e.dirty = true;
            return Ok(());
        }
        let mut buf = std::mem::take(&mut self.spare);
        buf.clear();
        buf.extend_from_slice(amps);
        self.insert_cached(id, buf, true)
    }

    /// Caches `amps` as chunk `id`, writing back whatever dirty entry the
    /// insert evicts and recycling the evicted buffer.
    fn insert_cached(
        &mut self,
        id: usize,
        amps: Vec<Complex64>,
        dirty: bool,
    ) -> Result<(), ContractError> {
        if let Some((evicted_id, evicted_amps, evicted_dirty)) = self.cache.insert(id, amps, dirty)
        {
            // Evict detail: 1 = dirty (write-back follows), 0 = clean drop.
            journal::record(
                evicted_id as u64,
                EventKind::Evict,
                f64::from(u8::from(evicted_dirty)),
            );
            if evicted_dirty {
                self.stats.writebacks += 1;
                self.cache.writebacks.inc();
                let res = self.write_back(evicted_id, &evicted_amps);
                self.spare = evicted_amps;
                return res;
            }
            self.spare = evicted_amps;
        }
        Ok(())
    }

    /// Recompresses `amps` into chunk `id`'s byte buffer (capacity reused),
    /// keeping resident-bytes accounting exact. Every call is one ledger
    /// event; under a lossy codec it is one *requantization*.
    ///
    /// The encode itself is guarded: a worker panic or codec error gets one
    /// retry, and if that also fails the chunk is quarantined (a zero
    /// chunk is encoded in its place) rather than failing the run.
    fn write_back(&mut self, id: usize, amps: &[Complex64]) -> Result<(), ContractError> {
        // Fresh bytes supersede any on-disk record of this chunk.
        if let Some(old) = self.spill_tier.invalidate(id) {
            self.spill_counters.live_bytes.add(-i64::from(old.len));
        }
        let mut bytes = std::mem::take(&mut self.chunks[id]);
        let old_len = bytes.len();
        let mut quarantined = false;
        let t0 = lat_start();
        let res = {
            let compressor = self.compressor;
            let bound = self.bound;
            let stream = &self.stream;
            let mut panics = 0u64;
            let mut retried_ok = false;
            let encode = |bytes: &mut Vec<u8>, data: &[f64]| -> (Result<(), ContractError>, bool) {
                match panic::catch_unwind(AssertUnwindSafe(|| {
                    compressor.compress_into(data, bound, stream, bytes)
                })) {
                    Ok(r) => (
                        r.map_err(|e| ContractError::Hook(format!("chunk compress: {e}"))),
                        false,
                    ),
                    Err(_) => (
                        Err(ContractError::Hook("worker panic in chunk compress".into())),
                        true,
                    ),
                }
            };
            let (mut res, p1) = encode(&mut bytes, as_interleaved(amps));
            panics += u64::from(p1);
            if res.is_err() {
                let (r2, p2) = encode(&mut bytes, as_interleaved(amps));
                panics += u64::from(p2);
                retried_ok = r2.is_ok();
                res = r2;
            }
            if res.is_err() {
                // Recovery exhausted: encode a zero chunk in place of the
                // unencodable one so the stored state stays decodable.
                let zeros = vec![0.0f64; amps.len() * 2];
                let (rz, pz) = encode(&mut bytes, &zeros);
                panics += u64::from(pz);
                if rz.is_ok() {
                    quarantined = true;
                    res = Ok(());
                }
            }
            self.note_worker_panics(panics);
            if retried_ok {
                self.faults.retries_ok += 1;
                self.fault_counters.retries_ok.inc();
            }
            res
        };
        lat_end(&self.latency.encode_us, t0);
        if quarantined {
            self.record_quarantine_loss(id);
        }
        self.stats.recompressions += 1;
        let abs_bound = self.lossy_abs_bound(amps);
        if res.is_ok() {
            journal::record(id as u64, EventKind::Encode, bytes.len() as f64);
        }
        if let Some(eps) = abs_bound {
            // Mirrors `ledger.record_requant` below exactly (which counts
            // every lossy write-back, successful or not), so the journal's
            // requant count always matches the ledger's.
            journal::record(id as u64, EventKind::WritebackRequant, eps);
        }
        // Lossless reconstruction is exact by contract: measured error 0
        // for free. Lossy error is measured (a decode of the fresh bytes,
        // pure metrology — not counted in the data-path stats) only under
        // QCF_LEDGER_MEASURE.
        let measured = match abs_bound {
            None => Some(0.0),
            Some(_) if self.measure_err && res.is_ok() => self
                .compressor
                .decompress_into(&bytes, &self.stream, &mut self.flat)
                .ok()
                .map(|()| {
                    as_interleaved(amps)
                        .iter()
                        .zip(self.flat.iter())
                        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
                }),
            Some(_) => None,
        };
        self.ledger.record_requant(id, abs_bound, measured);
        // Chaos site: corrupt one stored bit after a successful write-back.
        // Byte 0 is skipped — clearing the frame-flag bit there would turn
        // the stream into a legacy-v1 lookalike that decodes to garbage
        // instead of failing its checksum, i.e. an *undetectable* fault,
        // which is not the fault model (storage bit rot under an integrity
        // frame is always detectable).
        if res.is_ok() && bytes.len() > 1 {
            if let Some(payload) = qcf_telemetry::faults::inject("state.chunk.bitflip") {
                let bit = 8 + (payload as usize) % ((bytes.len() - 1) * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        self.chunk_norm[id] = if quarantined {
            0.0
        } else {
            amps.iter().map(|a| a.norm_sq()).sum()
        };
        self.resident.add(bytes.len() as i64 - old_len as i64);
        self.chunks[id] = bytes;
        self.sync_resident_stats();
        self.enforce_budget();
        res
    }

    /// Runs a whole circuit from `|0…0⟩`.
    pub fn run(
        circuit: &Circuit,
        chunk_qubits: usize,
        compressor: &'a dyn Compressor,
        bound: ErrorBound,
    ) -> Result<Self, ContractError> {
        let mut state = CompressedState::zero(circuit.n_qubits(), chunk_qubits, compressor, bound)?;
        for g in circuit.gates() {
            state.apply(g)?;
        }
        Ok(state)
    }

    /// Materializes the dense state (testing / small n). Dirty cached
    /// chunks are read directly — no flush needed.
    pub fn to_statevector(&self) -> Result<StateVector, ContractError> {
        let mut amps = Vec::with_capacity(1usize << self.n);
        for id in 0..self.chunks.len() {
            match self.cache.peek(id) {
                Some(cached) => amps.extend_from_slice(cached),
                None => amps.extend(self.decompress_chunk(id)?),
            }
        }
        StateVector::from_amplitudes(self.n, amps).map_err(|e| ContractError::Hook(e.to_string()))
    }

    /// MaxCut energy computed chunk-by-chunk (never materializes the state).
    pub fn maxcut_energy(&self, graph: &Graph) -> Result<f64, ContractError> {
        let mut energy = 0.0;
        let chunk_len = self.chunk_len();
        for &(a, b) in graph.edges() {
            let (ma, mb) = (1usize << a, 1usize << b);
            let mut zz = 0.0;
            for chunk_id in 0..self.chunks.len() {
                let decoded;
                let amps: &[Complex64] = match self.cache.peek(chunk_id) {
                    Some(cached) => cached,
                    None => {
                        decoded = self.decompress_chunk(chunk_id)?;
                        &decoded
                    }
                };
                let base = chunk_id * chunk_len;
                for (i, amp) in amps.iter().enumerate() {
                    let g = base + i;
                    let sign = if ((g & ma != 0) as u8) ^ ((g & mb != 0) as u8) == 1 {
                        -1.0
                    } else {
                        1.0
                    };
                    zz += sign * amp.norm_sq();
                }
            }
            energy += 0.5 * (1.0 - zz);
        }
        Ok(energy)
    }

    /// True when any chunk has been quarantined: amplitudes were lost and
    /// the state is degraded (norm < 1, with the loss accounted in the
    /// ledger and [`FaultStats::lost_norm_sq`]).
    pub fn degraded(&self) -> bool {
        self.faults.quarantines > 0
    }

    /// Scrubs the whole state end-to-end: every chunk is decoded — which
    /// verifies its integrity-frame checksum — through the recovery policy
    /// chain, and each chunk's ledger record is checked for a measured
    /// error exceeding its accumulated bound. Detected corruption is healed
    /// or quarantined *in place*, so a second `verify()` right after a
    /// non-clean one reports all-clean. Spilled chunks are fetched and
    /// verified through the identical chain — the scrub covers the disk
    /// tier for free — then re-tiered to the budget afterwards.
    pub fn verify(&mut self) -> Result<VerifyReport, ContractError> {
        let mut report = VerifyReport {
            chunks: self.chunks.len(),
            ..VerifyReport::default()
        };
        let mut amps = std::mem::take(&mut self.spare);
        for id in 0..self.chunks.len() {
            let errors_before = self.faults.decode_errors;
            match self.decode_healed(id, &mut amps) {
                Ok(true) if self.faults.decode_errors == errors_before => report.clean += 1,
                Ok(true) => report.healed += 1,
                Ok(false) => report.quarantined += 1,
                Err(e) => {
                    self.spare = amps;
                    return Err(e);
                }
            }
        }
        self.spare = amps;
        for id in 0..self.ledger.n_chunks() {
            let rec = self.ledger.chunk(id);
            let cap = rec.accumulated_bound.max(rec.last_abs_bound);
            if rec.measured && rec.max_measured_err > cap * (1.0 + 1e-9) {
                report.ledger_breaches += 1;
            }
        }
        // The scrub fetched every spilled chunk into RAM; restore the
        // configured tiering.
        self.enforce_budget();
        Ok(report)
    }

    /// Squared norm (drifts from 1 with the bound; a fidelity proxy).
    pub fn norm_sq(&self) -> Result<f64, ContractError> {
        let mut s = 0.0;
        for id in 0..self.chunks.len() {
            let decoded;
            let amps: &[Complex64] = match self.cache.peek(id) {
                Some(cached) => cached,
                None => {
                    decoded = self.decompress_chunk(id)?;
                    &decoded
                }
            };
            s += amps.iter().map(|a| a.norm_sq()).sum::<f64>();
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compressors::dummy::Memcpy;
    use qcircuit::{qaoa_circuit, QaoaParams};

    fn qaoa(n: usize, seed: u64) -> (Circuit, Graph) {
        let g = Graph::random_regular(n, 3, seed);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
        (c, g)
    }

    #[test]
    fn lossless_chunked_equals_dense() {
        let (circuit, graph) = qaoa(8, 3);
        let comp = Memcpy;
        for chunk_qubits in [2usize, 4, 8] {
            let cs =
                CompressedState::run(&circuit, chunk_qubits, &comp, ErrorBound::Abs(1e-3)).unwrap();
            let dense = StateVector::run(&circuit);
            let materialized = cs.to_statevector().unwrap();
            assert!(
                (materialized.fidelity(&dense) - 1.0).abs() < 1e-12,
                "chunk_qubits={chunk_qubits}"
            );
            assert!(
                (cs.maxcut_energy(&graph).unwrap() - dense.maxcut_energy(&graph)).abs() < 1e-10
            );
        }
    }

    #[test]
    fn high_qubit_gates_cross_chunks_correctly() {
        // All entanglers across the chunk boundary.
        let comp = Memcpy;
        let circuit = Circuit::new(6)
            .with(Gate::H(0))
            .with(Gate::Cnot(0, 5))
            .with(Gate::Zz(1, 4, 0.7))
            .with(Gate::Swap(2, 5))
            .with(Gate::Cnot(4, 3));
        let cs = CompressedState::run(&circuit, 2, &comp, ErrorBound::Abs(1e-6)).unwrap();
        let dense = StateVector::run(&circuit);
        assert!((cs.to_statevector().unwrap().fidelity(&dense) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_high_qubit_gate() {
        let comp = Memcpy;
        let circuit = Circuit::new(6)
            .with(Gate::H(4))
            .with(Gate::H(5))
            .with(Gate::Cnot(5, 4))
            .with(Gate::Zz(4, 5, 0.3));
        let cs = CompressedState::run(&circuit, 3, &comp, ErrorBound::Abs(1e-6)).unwrap();
        let dense = StateVector::run(&circuit);
        assert!((cs.to_statevector().unwrap().fidelity(&dense) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lossy_state_keeps_high_fidelity() {
        let (circuit, graph) = qaoa(10, 5);
        let comp = compressors::cuszx::CuSzx::default();
        let cs = CompressedState::run(&circuit, 5, &comp, ErrorBound::Abs(1e-7)).unwrap();
        let dense = StateVector::run(&circuit);
        let f = cs.to_statevector().unwrap().fidelity(&dense);
        assert!(f > 0.999, "fidelity {f}");
        let e = cs.maxcut_energy(&graph).unwrap();
        assert!((e - dense.maxcut_energy(&graph)).abs() / dense.maxcut_energy(&graph) < 0.01);
        assert!((cs.norm_sq().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn stats_track_resident_bytes() {
        let (circuit, _) = qaoa(8, 7);
        let comp = compressors::cuszx::CuSzx::default();
        let cs = CompressedState::run(&circuit, 4, &comp, ErrorBound::Abs(1e-6)).unwrap();
        assert!(cs.stats.recompressions > 0);
        assert!(cs.stats.decompressions > 0);
        assert!(cs.stats.resident_bytes > 0);
        assert!(cs.stats.peak_resident_bytes >= cs.stats.resident_bytes);
    }

    #[test]
    fn cache_capacities_agree_for_lossless_codec() {
        let (circuit, graph) = qaoa(8, 11);
        let comp = Memcpy;
        let reference = StateVector::run(&circuit);
        for cap in [0usize, 1, 8, 64] {
            let mut cs = CompressedState::zero(8, 3, &comp, ErrorBound::Abs(1e-6)).unwrap();
            cs.set_cache_capacity(cap).unwrap();
            for g in circuit.gates() {
                cs.apply(g).unwrap();
            }
            let f = cs.to_statevector().unwrap().fidelity(&reference);
            assert!((f - 1.0).abs() < 1e-12, "cap={cap} fidelity {f}");
            assert!(
                (cs.maxcut_energy(&graph).unwrap() - reference.maxcut_energy(&graph)).abs() < 1e-10,
                "cap={cap}"
            );
        }
    }

    #[test]
    fn cache_hits_skip_codec_work() {
        let comp = Memcpy;
        let mut cs = CompressedState::zero(6, 3, &comp, ErrorBound::Abs(1e-6)).unwrap();
        cs.set_cache_capacity(8).unwrap(); // all 8 chunks fit
        let gates = [Gate::H(0), Gate::Rx(1, 0.4), Gate::Cnot(0, 2), Gate::T(1)];
        for g in &gates {
            cs.apply(g).unwrap();
        }
        // First low gate misses every chunk once; the rest all hit.
        assert_eq!(cs.stats.cache_misses, 8);
        assert_eq!(cs.stats.cache_hits, 8 * (gates.len() as u64 - 1));
        assert_eq!(cs.stats.decompressions, 8);
        // Nothing evicted, nothing flushed: the zero()-time compressions
        // are the only codec writes so far.
        assert_eq!(cs.stats.writebacks, 0);
        assert_eq!(cs.stats.recompressions, 0);
        cs.flush().unwrap();
        assert_eq!(cs.stats.writebacks, 8);
        assert_eq!(cs.stats.recompressions, 8);
        // Flush keeps entries resident but clean; a second flush is a no-op.
        cs.flush().unwrap();
        assert_eq!(cs.stats.writebacks, 8);
    }

    #[test]
    fn eviction_writes_back_and_preserves_state() {
        let comp = Memcpy;
        let circuit = Circuit::new(6)
            .with(Gate::H(0))
            .with(Gate::Cnot(0, 1))
            .with(Gate::Ry(2, 0.9))
            .with(Gate::Cnot(1, 2));
        let mut cs = CompressedState::zero(6, 2, &comp, ErrorBound::Abs(1e-6)).unwrap();
        cs.set_cache_capacity(1).unwrap(); // 16 chunks through a 1-slot cache
        for g in circuit.gates() {
            cs.apply(g).unwrap();
        }
        assert!(cs.stats.writebacks > 0, "1-slot cache must evict");
        let dense = StateVector::run(&circuit);
        assert!((cs.to_statevector().unwrap().fidelity(&dense) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_gates_see_dirty_cached_chunks() {
        // A low gate dirties cached chunks, then a high gate groups them:
        // the gather must read the cached data, not the stale compressed
        // bytes.
        let comp = Memcpy;
        let circuit = Circuit::new(5)
            .with(Gate::H(0))
            .with(Gate::Cnot(0, 4))
            .with(Gate::H(1))
            .with(Gate::Swap(1, 3))
            .with(Gate::Zz(0, 4, 0.6));
        let mut cs = CompressedState::zero(5, 2, &comp, ErrorBound::Abs(1e-6)).unwrap();
        cs.set_cache_capacity(4).unwrap();
        for g in circuit.gates() {
            cs.apply(g).unwrap();
        }
        let dense = StateVector::run(&circuit);
        assert!((cs.to_statevector().unwrap().fidelity(&dense) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flush_makes_resident_bytes_exact() {
        let comp = compressors::cuszx::CuSzx::default();
        let (circuit, _) = qaoa(8, 13);
        let mut cs = CompressedState::zero(8, 4, &comp, ErrorBound::Abs(1e-7)).unwrap();
        cs.set_cache_capacity(16).unwrap();
        for g in circuit.gates() {
            cs.apply(g).unwrap();
        }
        cs.flush().unwrap();
        let total: usize = cs.chunks.iter().map(Vec::len).sum();
        assert_eq!(cs.stats.resident_bytes, total);
        assert!(cs.stats.peak_resident_bytes >= cs.stats.resident_bytes);
    }

    #[test]
    fn ledger_stays_zero_under_lossless_codec() {
        let (circuit, _) = qaoa(8, 17);
        let comp = Memcpy;
        let mut cs = CompressedState::run(&circuit, 3, &comp, ErrorBound::Abs(1e-4)).unwrap();
        cs.flush().unwrap();
        let s = cs.ledger_summary();
        assert_eq!(s.total_requants, 0);
        assert_eq!(s.max_accumulated_bound, 0.0);
        assert_eq!(s.accumulated_rss, 0.0);
        assert_eq!(s.max_measured_err, 0.0);
        assert!(!s.lossy);
        // Every encode was still counted.
        assert_eq!(
            s.total_encodes,
            cs.chunks.len() as u64 + cs.stats.recompressions
        );
    }

    #[test]
    fn ledger_requants_match_recompressions_for_lossy_codec() {
        let (circuit, _) = qaoa(8, 19);
        let comp = compressors::cuszx::CuSzx::default();
        let mut cs = CompressedState::zero(8, 3, &comp, ErrorBound::Abs(1e-7)).unwrap();
        cs.set_cache_capacity(2).unwrap(); // force evictions
        for g in circuit.gates() {
            cs.apply(g).unwrap();
        }
        cs.flush().unwrap();
        let s = cs.ledger_summary();
        // Under a lossy codec every write_back is exactly one requant.
        assert_eq!(s.total_requants, cs.stats.recompressions);
        assert!(
            s.total_requants > 0,
            "2-slot cache over 32 chunks must evict"
        );
        assert!(s.max_requants > 0);
        assert!(s.max_accumulated_bound > 0.0);
        assert!(s.accumulated_rss >= s.max_accumulated_bound);
        assert!(s.lossy);
        // Each chunk absorbed at least its initial quantization.
        assert!(cs.ledger().lossy_events() >= cs.chunks.len() as u64);
    }

    #[test]
    fn measured_error_respects_the_bound_when_enabled() {
        let comp = compressors::cuszx::CuSzx::default();
        let (circuit, _) = qaoa(8, 23);
        let mut cs = CompressedState::zero(8, 4, &comp, ErrorBound::Abs(1e-6)).unwrap();
        cs.measure_err = true; // what QCF_LEDGER_MEASURE=1 sets
        for g in circuit.gates() {
            cs.apply(g).unwrap();
        }
        cs.flush().unwrap();
        let s = cs.ledger_summary();
        assert!(s.total_requants > 0);
        // The measured max-abs-err must honor the compressor's contract.
        assert!(
            s.max_measured_err <= 1e-6 * (1.0 + 1e-9),
            "measured {} exceeds bound",
            s.max_measured_err
        );
    }

    #[test]
    fn zero_state_compresses_massively() {
        let comp = compressors::cuszx::CuSzx::default();
        let cs = CompressedState::zero(16, 10, &comp, ErrorBound::Abs(1e-8)).unwrap();
        // 2^16 amplitudes = 1 MiB dense; all-zero chunks are near-free.
        assert!(
            cs.stats.resident_bytes < cs.dense_bytes() / 50,
            "resident {} vs dense {}",
            cs.stats.resident_bytes,
            cs.dense_bytes()
        );
    }
}
