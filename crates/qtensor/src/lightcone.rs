//! Lightcone extraction for local observables.
//!
//! `⟨Z_a Z_b⟩` depends only on gates in the causal cone of qubits `a` and
//! `b`: walking the circuit backwards, a gate matters iff it touches a qubit
//! already known to matter, and then all its qubits matter. QTensor's energy
//! computation relies on this — each edge term of the QAOA objective
//! contracts a small cone instead of the whole circuit, which is also why
//! the intermediate-tensor sizes the paper compresses are set by cone width
//! rather than qubit count.

use qcircuit::Circuit;

/// A subcircuit restricted to the causal cone of some observable qubits,
/// with wires compacted to `0..cone_width`.
#[derive(Debug, Clone)]
pub struct Lightcone {
    /// The compacted subcircuit.
    pub circuit: Circuit,
    /// For each original qubit in the cone, its compact id.
    mapping: Vec<(usize, usize)>,
}

impl Lightcone {
    /// Number of qubits in the cone.
    pub fn width(&self) -> usize {
        self.circuit.n_qubits()
    }

    /// Compact id of an original qubit, if it is in the cone.
    pub fn compact_id(&self, original: usize) -> Option<usize> {
        self.mapping
            .iter()
            .find(|&&(o, _)| o == original)
            .map(|&(_, c)| c)
    }

    /// `(original, compact)` pairs, sorted by original id.
    pub fn mapping(&self) -> &[(usize, usize)] {
        &self.mapping
    }
}

/// Extracts the lightcone of `support` (e.g. the two endpoints of a MaxCut
/// edge) from `circuit`.
pub fn lightcone(circuit: &Circuit, support: &[usize]) -> Lightcone {
    let mut in_cone = vec![false; circuit.n_qubits()];
    for &q in support {
        assert!(q < circuit.n_qubits(), "support qubit out of range");
        in_cone[q] = true;
    }

    // Backward sweep: record which gates are kept.
    let mut keep = vec![false; circuit.len()];
    for (i, g) in circuit.gates().iter().enumerate().rev() {
        let qs = g.qubits();
        if qs.iter().any(|&q| in_cone[q]) {
            keep[i] = true;
            for q in qs {
                in_cone[q] = true;
            }
        }
    }

    // Compact the cone's qubits.
    let originals: Vec<usize> = (0..circuit.n_qubits()).filter(|&q| in_cone[q]).collect();
    let mut compact = vec![usize::MAX; circuit.n_qubits()];
    for (c, &o) in originals.iter().enumerate() {
        compact[o] = c;
    }

    let mut sub = Circuit::new(originals.len());
    for (i, g) in circuit.gates().iter().enumerate() {
        if keep[i] {
            sub.push(g.map_qubits(|q| compact[q]));
        }
    }

    Lightcone {
        circuit: sub,
        mapping: originals.iter().map(|&o| (o, compact[o])).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{qaoa_circuit, Gate, Graph, QaoaParams};

    #[test]
    fn disconnected_qubit_excluded() {
        // Qubit 2 never interacts with 0/1: its gates drop out of the cone.
        let c = Circuit::new(3)
            .with(Gate::H(0))
            .with(Gate::H(1))
            .with(Gate::H(2))
            .with(Gate::Cnot(0, 1))
            .with(Gate::Rx(2, 0.5));
        let lc = lightcone(&c, &[0, 1]);
        assert_eq!(lc.width(), 2);
        assert_eq!(lc.circuit.len(), 3); // H(0), H(1), CNOT
        assert_eq!(lc.compact_id(0), Some(0));
        assert_eq!(lc.compact_id(1), Some(1));
        assert_eq!(lc.compact_id(2), None);
    }

    #[test]
    fn cone_grows_through_entanglers() {
        // 0-1 entangled, 1-2 entangled: cone of {0} pulls in 1 then 2's gate.
        let c = Circuit::new(3)
            .with(Gate::H(2))
            .with(Gate::Cnot(2, 1))
            .with(Gate::Cnot(1, 0));
        let lc = lightcone(&c, &[0]);
        assert_eq!(lc.width(), 3);
        assert_eq!(lc.circuit.len(), 3);
    }

    #[test]
    fn qaoa_p1_cone_is_edge_neighbourhood() {
        // For p=1 QAOA the cone of edge (a,b) is a ∪ b ∪ neighbours(a,b).
        let g = Graph::cycle(8);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
        let lc = lightcone(&c, &[0, 1]);
        // On a ring: {7, 0, 1, 2}
        assert_eq!(lc.width(), 4);
    }

    #[test]
    fn cone_preserves_gate_order() {
        let c = Circuit::new(2)
            .with(Gate::H(0))
            .with(Gate::Rz(0, 0.1))
            .with(Gate::Cnot(0, 1));
        let lc = lightcone(&c, &[1]);
        let names: Vec<&str> = lc.circuit.gates().iter().map(|g| g.name()).collect();
        assert_eq!(names, vec!["H", "RZ", "CNOT"]);
    }

    #[test]
    fn full_support_keeps_everything() {
        let g = Graph::cycle(5);
        let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
        let lc = lightcone(&c, &[0, 1, 2, 3, 4]);
        assert_eq!(lc.circuit.len(), c.len());
    }
}
