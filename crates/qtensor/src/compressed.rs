//! Compressed contraction: intermediates round-trip through a compressor.
//!
//! This is the paper's end-to-end integration point. In the real system,
//! QTensor stores each intermediate tensor compressed on the GPU and
//! decompresses it when the next bucket needs it; semantically, contraction
//! proceeds with the *reconstructed* (error-bounded) tensors. The
//! [`CompressingHook`] reproduces exactly that data flow and accounts both
//! footprints, while [`NoiseHook`] injects idealized bounded noise for the
//! error-impact characterization (experiment E8).

use crate::contraction::{ContractError, ContractionHook};
use crate::ledger::rss_accumulate;
use compressors::traits::value_range;
use compressors::{Compressor, CompressorKind, ErrorBound};
use gpu_model::{DeviceSpec, Stream};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tensornet::planes::{as_interleaved, as_interleaved_mut};
use tensornet::Tensor;

/// Cumulative compression accounting across a contraction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressionStats {
    /// Tensors that were compressed (met the size threshold).
    pub tensors_compressed: usize,
    /// Tensors passed through untouched.
    pub tensors_skipped: usize,
    /// Uncompressed bytes of the compressed tensors.
    pub uncompressed_bytes: u64,
    /// Their compressed size.
    pub compressed_bytes: u64,
    /// Largest single-tensor uncompressed size seen.
    pub largest_tensor_bytes: u64,
    /// Number of *lossy* round trips (0 under a lossless codec).
    pub lossy_events: u64,
    /// Accumulated-bound estimate over the contraction: RSS of each lossy
    /// round trip's resolved absolute bound (the same first-order model
    /// `qtensor::ledger` applies per chunk; `qcf-core::fidelity` turns it
    /// into a predicted energy error).
    pub accumulated_bound: f64,
}

impl CompressionStats {
    /// Aggregate compression ratio over everything compressed (1.0 if none).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.uncompressed_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Routes every intermediate tensor of at least `min_elems` complex elements
/// through `compressor` (compress + decompress), so contraction continues on
/// the error-bounded reconstruction.
pub struct CompressingHook<'a> {
    compressor: &'a dyn Compressor,
    bound: ErrorBound,
    stream: Stream,
    min_elems: usize,
    /// Mirrors `stats.accumulated_bound` into the registry
    /// (`contract.accumulated_bound`) when telemetry is enabled.
    acc_bound_gauge: std::sync::Arc<qcf_telemetry::FloatGauge>,
    /// Accounting for E7/E9.
    pub stats: CompressionStats,
}

impl<'a> CompressingHook<'a> {
    /// Creates a hook compressing tensors of `min_elems`+ complex elements
    /// on a fresh simulated A100 stream.
    pub fn new(compressor: &'a dyn Compressor, bound: ErrorBound, min_elems: usize) -> Self {
        CompressingHook {
            compressor,
            bound,
            stream: Stream::new(DeviceSpec::a100()),
            min_elems,
            acc_bound_gauge: qcf_telemetry::registry().float_gauge("contract.accumulated_bound"),
            stats: CompressionStats::default(),
        }
    }

    /// The simulated GPU stream (for timing reports).
    pub fn stream(&self) -> &Stream {
        &self.stream
    }
}

impl ContractionHook for CompressingHook<'_> {
    fn on_intermediate(&mut self, mut tensor: Tensor) -> Result<Tensor, ContractError> {
        if tensor.len() < self.min_elems {
            self.stats.tensors_skipped += 1;
            return Ok(tensor);
        }
        let _span = qcf_telemetry::span!("compress.intermediate");
        let flat = as_interleaved(tensor.data());
        let bytes = self
            .compressor
            .compress(flat, self.bound, &self.stream)
            .map_err(|e| ContractError::Hook(format!("compress: {e}")))?;
        let reconstructed = self
            .compressor
            .decompress(&bytes, &self.stream)
            .map_err(|e| ContractError::Hook(format!("decompress: {e}")))?;
        if reconstructed.len() != tensor.len() * 2 {
            return Err(ContractError::Hook("reconstruction length mismatch".into()));
        }
        let nbytes = (tensor.len() * 16) as u64;
        self.stats.tensors_compressed += 1;
        self.stats.uncompressed_bytes += nbytes;
        self.stats.compressed_bytes += bytes.len() as u64;
        self.stats.largest_tensor_bytes = self.stats.largest_tensor_bytes.max(nbytes);
        if self.compressor.kind() == CompressorKind::ErrorBounded {
            let (min, max) = value_range(flat);
            let eps = self.bound.to_abs(max - min);
            self.stats.lossy_events += 1;
            self.stats.accumulated_bound = rss_accumulate(self.stats.accumulated_bound, eps);
            self.acc_bound_gauge.set(self.stats.accumulated_bound);
        }
        // Write the reconstruction back into the tensor's own storage —
        // labels and dims are untouched, and no per-intermediate complex
        // buffer is allocated.
        as_interleaved_mut(tensor.data_mut()).copy_from_slice(&reconstructed);
        Ok(tensor)
    }
}

/// Injects uniform noise in `[-eps, +eps]` into every intermediate of at
/// least `min_elems` elements — the idealized worst-case of an
/// error-bounded compressor, used to characterize how tensor-level error
/// moves the final energy.
pub struct NoiseHook {
    eps: f64,
    min_elems: usize,
    rng: ChaCha8Rng,
    /// Number of tensors perturbed.
    pub perturbed: usize,
}

impl NoiseHook {
    /// Creates a seeded noise hook.
    pub fn new(eps: f64, min_elems: usize, seed: u64) -> Self {
        NoiseHook {
            eps,
            min_elems,
            rng: ChaCha8Rng::seed_from_u64(seed),
            perturbed: 0,
        }
    }
}

impl ContractionHook for NoiseHook {
    fn on_intermediate(&mut self, mut tensor: Tensor) -> Result<Tensor, ContractError> {
        if tensor.len() < self.min_elems || self.eps == 0.0 {
            return Ok(tensor);
        }
        self.perturbed += 1;
        for v in tensor.data_mut() {
            v.re += self.rng.gen_range(-self.eps..=self.eps);
            v.im += self.rng.gen_range(-self.eps..=self.eps);
        }
        Ok(tensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::Simulator;
    use compressors::cusz::CuSz;
    use compressors::cuszx::CuSzx;
    use compressors::dummy::Memcpy;
    use qcircuit::{Graph, QaoaParams};

    fn setup() -> (Graph, QaoaParams, f64) {
        let g = Graph::random_regular(10, 3, 21);
        let params = QaoaParams::new(vec![0.5, 0.8], vec![0.3, 0.55]);
        let exact = Simulator::default().energy(&g, &params).unwrap().energy;
        (g, params, exact)
    }

    #[test]
    fn lossless_compression_changes_nothing() {
        let (g, params, exact) = setup();
        let comp = Memcpy;
        let mut hook = CompressingHook::new(&comp, ErrorBound::Abs(1e-3), 1);
        let e = Simulator::default()
            .energy_with_hook(&g, &params, &mut hook)
            .unwrap()
            .energy;
        assert!((e - exact).abs() < 1e-12);
        assert!(hook.stats.tensors_compressed > 0);
        assert!((hook.stats.ratio() - 1.0).abs() < 0.1);
        assert_eq!(hook.stats.lossy_events, 0);
        assert_eq!(hook.stats.accumulated_bound, 0.0);
    }

    #[test]
    fn lossy_compression_keeps_energy_close() {
        let (g, params, exact) = setup();
        let comp = CuSz::default();
        let mut hook = CompressingHook::new(&comp, ErrorBound::Abs(1e-5), 4);
        let e = Simulator::default()
            .energy_with_hook(&g, &params, &mut hook)
            .unwrap()
            .energy;
        let rel = (e - exact).abs() / exact.abs();
        assert!(rel < 0.01, "energy off by {:.3}% at eb=1e-5", rel * 100.0);
        assert!(
            hook.stats.ratio() > 1.0,
            "lossy compression should shrink tensors"
        );
        assert_eq!(
            hook.stats.lossy_events, hook.stats.tensors_compressed as u64,
            "every lossy round trip is one ledger event"
        );
        // Abs bound ⇒ each event contributes exactly eb: RSS closed form.
        let want = crate::ledger::uniform_rss(1e-5, hook.stats.lossy_events as usize);
        assert!((hook.stats.accumulated_bound - want).abs() < 1e-12);
    }

    #[test]
    fn looser_bound_larger_energy_drift() {
        let (g, params, exact) = setup();
        let drift = |eb: f64| {
            let comp = CuSzx::default();
            let mut hook = CompressingHook::new(&comp, ErrorBound::Abs(eb), 4);
            let e = Simulator::default()
                .energy_with_hook(&g, &params, &mut hook)
                .unwrap()
                .energy;
            (e - exact).abs()
        };
        let tight = drift(1e-8);
        let loose = drift(1e-2);
        assert!(tight <= loose + 1e-9, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn min_elems_threshold_respected() {
        let (g, params, _) = setup();
        let comp = Memcpy;
        let mut hook = CompressingHook::new(&comp, ErrorBound::Abs(1e-3), usize::MAX);
        Simulator::default()
            .energy_with_hook(&g, &params, &mut hook)
            .unwrap();
        assert_eq!(hook.stats.tensors_compressed, 0);
        assert!(hook.stats.tensors_skipped > 0);
    }

    #[test]
    fn noise_hook_moves_energy_boundedly() {
        let (g, params, exact) = setup();
        let mut hook = NoiseHook::new(1e-6, 1, 7);
        let e = Simulator::default()
            .energy_with_hook(&g, &params, &mut hook)
            .unwrap()
            .energy;
        assert!(hook.perturbed > 0);
        assert!((e - exact).abs() < 1e-2);
        assert_ne!(e, exact, "noise should move the result measurably");
    }

    #[test]
    fn zero_noise_is_identity() {
        let (g, params, exact) = setup();
        let mut hook = NoiseHook::new(0.0, 1, 7);
        let e = Simulator::default()
            .energy_with_hook(&g, &params, &mut hook)
            .unwrap()
            .energy;
        assert_eq!(e, exact);
    }
}
