//! Property tests on the framework crate: bound contracts and stream
//! well-formedness under arbitrary inputs and stage configurations.

use compressors::{Compressor, ErrorBound};
use gpu_model::{DeviceSpec, Stream};
use proptest::prelude::*;
use qcf_core::{dict, Mode, QcfCompressor, StageToggles};

fn stream() -> Stream {
    Stream::new(DeviceSpec::a100())
}

/// Buffers spanning the regimes the pipeline branches on: tiny alphabets,
/// dense noise, zeros, mixed magnitudes, odd lengths.
fn plane_strategy() -> impl Strategy<Value = Vec<f64>> {
    let val = prop_oneof![
        3 => (0u8..12).prop_map(|k| k as f64 * 0.07 - 0.4), // small alphabet
        2 => Just(0.0f64),
        2 => -1.0f64..1.0,                                  // dense noise
        1 => -1e-9f64..1e-9,
        1 => -1e5f64..1e5,
    ];
    prop::collection::vec(val, 0..600)
}

fn toggle_strategy() -> impl Strategy<Value = StageToggles> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(deinterleave, zero_collapse, dictionary, dedup, lossless_tail)| StageToggles {
                deinterleave,
                zero_collapse,
                dictionary,
                dedup,
                lossless_tail,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn any_stage_combination_honours_the_bound(
        data in plane_strategy(),
        toggles in toggle_strategy(),
        ratio_mode in any::<bool>(),
        eb_exp in -7i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp);
        let mode = if ratio_mode { Mode::Ratio } else { Mode::Speed };
        let comp = QcfCompressor::with_stages(mode, toggles);
        let s = stream();
        let bytes = comp.compress(&data, ErrorBound::Abs(eb), &s).unwrap();
        let rec = comp.decompress(&bytes, &s).unwrap();
        prop_assert_eq!(rec.len(), data.len());
        let max_abs = data.iter().chain(&rec).fold(0.0f64, |m, &v| m.max(v.abs()));
        let tol = eb * (1.0 + 1e-9) + max_abs * 16.0 * f64::EPSILON;
        for (i, (a, b)) in data.iter().zip(&rec).enumerate() {
            prop_assert!(
                (a - b).abs() <= tol,
                "mode {:?} toggles {:?} at {}: |{} - {}| > {}", mode, toggles, i, a, b, eb
            );
        }
    }

    #[test]
    fn dictionary_quantization_is_idempotent(
        data in plane_strategy(),
        eb_exp in -6i32..-1,
    ) {
        // Quantizing an already-quantized plane must reproduce it exactly:
        // every reconstructed value is q·2eb, which re-quantizes to q.
        let eb = 10f64.powi(eb_exp);
        if let Some(q1) = dict::quantize(&data, eb) {
            let twoeb = 2.0 * eb;
            let rec: Vec<f64> = q1.indices.iter().map(|&i| q1.table[i as usize] as f64 * twoeb).collect();
            let q2 = dict::quantize(&rec, eb).expect("requantize");
            let rec2: Vec<f64> =
                q2.indices.iter().map(|&i| q2.table[i as usize] as f64 * twoeb).collect();
            for (a, b) in rec.iter().zip(&rec2) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn speed_and_ratio_flavours_agree_on_values(
        data in plane_strategy(),
    ) {
        // Both flavours reconstruct from the same quantization, so their
        // outputs must agree exactly (they differ only in index coding).
        let eb = 1e-4;
        if let Some(q) = dict::quantize(&data, eb) {
            if data.is_empty() {
                return Ok(());
            }
            let mut ratio = Vec::new();
            dict::encode_ratio(&q, eb, &mut ratio);
            let mut speed = Vec::new();
            dict::encode_speed(&q, eb, &mut speed);
            let mut pos = 0;
            let r1 = dict::decode_ratio(&ratio, &mut pos).unwrap();
            let mut pos = 0;
            let r2 = dict::decode_speed(&speed, &mut pos).unwrap();
            for (a, b) in r1.iter().zip(&r2) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn into_variants_bit_identical_for_any_stage_combination(
        data in plane_strategy(),
        toggles in toggle_strategy(),
        ratio_mode in any::<bool>(),
        garbage in prop::collection::vec(any::<u8>(), 0..256),
        dirt in prop::collection::vec(-1e3f64..1e3, 0..128),
    ) {
        // The workspace-pooled compress_into/decompress_into must reproduce
        // the allocating entry points bit for bit, even into dirty buffers,
        // for every stage combination in both flavours.
        let mode = if ratio_mode { Mode::Ratio } else { Mode::Speed };
        let comp = QcfCompressor::with_stages(mode, toggles);
        let s = stream();
        let fresh = comp.compress(&data, ErrorBound::Abs(1e-4), &s).unwrap();
        let mut reused = garbage;
        comp.compress_into(&data, ErrorBound::Abs(1e-4), &s, &mut reused).unwrap();
        prop_assert_eq!(&fresh, &reused, "compress_into diverges ({:?}/{:?})", mode, toggles);

        let dec_fresh = comp.decompress(&fresh, &s).unwrap();
        let mut dec_reused = dirt;
        comp.decompress_into(&fresh, &s, &mut dec_reused).unwrap();
        prop_assert_eq!(
            dec_fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            dec_reused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "decompress_into diverges ({:?}/{:?})", mode, toggles
        );
    }

    #[test]
    fn framework_streams_never_panic_on_mutation(
        data in prop::collection::vec(-1.0f64..1.0, 1..200),
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        let comp = QcfCompressor::ratio();
        let s = stream();
        let mut bytes = comp.compress(&data, ErrorBound::Abs(1e-3), &s).unwrap();
        for &(pos, val) in &flips {
            let len = bytes.len();
            bytes[pos % len] ^= val;
        }
        let _ = comp.decompress(&bytes, &s); // error or garbage, never panic
    }
}
