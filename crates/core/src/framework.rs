//! The configurable compression framework (contribution 3).
//!
//! Two operating points over the same stage pipeline:
//!
//! * **Ratio mode** — P1 de-interleave → P3 quantization dictionary with
//!   Huffman-coded indices (`dict`); when the dictionary is inapplicable
//!   (too many distinct values), fall back to P2 zero collapse → P4 block
//!   dedup → cuSZ. An optional LZ4 tail pass wraps either route.
//! * **Speed mode** — the same dictionary with a zero bitmap and
//!   fixed-width indices, fused into a single pass (de-interleave and
//!   quantize cost registers, not extra memory traffic); fallback is
//!   collapse → cuSZx.
//!
//! Error budgeting: the dictionary route quantizes once at the full user
//! bound. On the fallback route, zero collapse spends half the bound
//! (threshold `eb/2`) and the backend gets the other half — either way the
//! end-to-end pointwise guarantee is exactly the user's bound.
//!
//! Every stage can be toggled individually — that is what the paper's
//! ablation (E4) sweeps.

use crate::dict;
use crate::stages::{
    dedup_blocks, deinterleave_into, interleave_into, read_refs, reassemble_blocks_into,
    write_refs, zero_collapse, zero_frac,
};
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::CodecError;
use compressors::cusz::CuSz;
use compressors::cuszx::CuSzx;
use compressors::lz4::{lz4_decode_block, lz4_encode_block};
use compressors::traits::{read_stream_header, stream_header_into, value_range};
use compressors::{decompress_any_into, Compressor, CompressorKind, ErrorBound};
use gpu_model::{with_arena_phase, KernelSpec, MemoryPattern, Stream, Workspace};
use std::borrow::Cow;

/// Stream id of the ratio-mode framework.
pub const QCF_RATIO_ID: u8 = 10;
/// Stream id of the speed-mode framework.
pub const QCF_SPEED_ID: u8 = 11;

/// Which backend/stage preset the framework runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// cuSZ backend, all stages (maximum compression ratio).
    Ratio,
    /// cuSZx backend, single-pass stages only (maximum throughput).
    Speed,
}

/// Individual stage switches (the ablation axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageToggles {
    /// P1: split interleaved complex input into real/imag planes.
    pub deinterleave: bool,
    /// P2: flush `|v| ≤ eb/2` to exact zero (fallback route; spends half
    /// the bound).
    pub zero_collapse: bool,
    /// P3: quantization dictionary (repeated-value extraction).
    pub dictionary: bool,
    /// P4: deduplicate bit-identical blocks before the backend (fallback
    /// route).
    pub dedup: bool,
    /// Tail: LZ4 pass over each plane's payload when it shrinks it.
    pub lossless_tail: bool,
}

impl StageToggles {
    /// Everything off — the framework degenerates to its bare backend.
    pub fn none() -> Self {
        StageToggles {
            deinterleave: false,
            zero_collapse: false,
            dictionary: false,
            dedup: false,
            lossless_tail: false,
        }
    }

    /// Everything on (ratio mode's default).
    pub fn all() -> Self {
        StageToggles {
            deinterleave: true,
            zero_collapse: true,
            dictionary: true,
            dedup: true,
            lossless_tail: true,
        }
    }

    /// Single-pass-friendly stages only (speed mode's default).
    pub fn single_pass() -> Self {
        StageToggles {
            deinterleave: true,
            zero_collapse: true,
            dictionary: true,
            dedup: false,
            lossless_tail: false,
        }
    }
}

/// Dedup block size (complex-plane f64 values per block).
const DEDUP_BLOCK: usize = 256;
/// Dedup engages when at least this fraction of blocks are duplicates.
const DEDUP_MIN_FRAC: f64 = 0.05;
/// Zero collapse engages when at least this fraction would flush.
const COLLAPSE_MIN_FRAC: f64 = 0.05;

/// The paper's compression framework, usable anywhere a [`Compressor`] is.
///
/// Input buffers are treated as interleaved complex (`re, im, …`) when
/// `deinterleave` is on and the length is even — the layout tensors have.
#[derive(Debug, Clone)]
pub struct QcfCompressor {
    mode: Mode,
    stages: StageToggles,
    /// Reusable scratch planes threaded through every stage; clones share
    /// the underlying pools (see [`Workspace`]).
    ws: Workspace,
    /// Cached `stage.encode_us` / `stage.decode_us` latency histograms so
    /// per-call observation never takes the registry lock.
    lat_encode: std::sync::Arc<qcf_telemetry::Histogram>,
    lat_decode: std::sync::Arc<qcf_telemetry::Histogram>,
}

/// Microsecond bucket bounds for the framework's whole-call latency
/// histograms (`stage.encode_us` / `stage.decode_us`): log-spaced from
/// small-plane calls to the multi-ms tail of ratio-mode dedup sweeps.
const STAGE_LATENCY_BOUNDS_US: [f64; 10] = [
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
];

/// Starts a whole-call latency measurement iff telemetry is enabled.
#[inline]
fn lat_start() -> Option<std::time::Instant> {
    if qcf_telemetry::enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

impl QcfCompressor {
    /// Ratio mode with all stages.
    pub fn ratio() -> Self {
        QcfCompressor::with_stages(Mode::Ratio, StageToggles::all())
    }

    /// Speed mode with single-pass stages.
    pub fn speed() -> Self {
        QcfCompressor::with_stages(Mode::Speed, StageToggles::single_pass())
    }

    /// Custom stage configuration (ablation studies).
    pub fn with_stages(mode: Mode, stages: StageToggles) -> Self {
        let reg = qcf_telemetry::registry();
        QcfCompressor {
            mode,
            stages,
            // Share the compressor-crate pools so framework planes, backend
            // payloads, and codec buffers all amortize in one place.
            ws: compressors::workspace().clone(),
            lat_encode: reg.histogram("stage.encode_us", &STAGE_LATENCY_BOUNDS_US),
            lat_decode: reg.histogram("stage.decode_us", &STAGE_LATENCY_BOUNDS_US),
        }
    }

    /// The active stage toggles.
    pub fn stages(&self) -> StageToggles {
        self.stages
    }

    /// The active mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    fn backend(&self) -> Box<dyn Compressor> {
        match self.mode {
            Mode::Ratio => Box::new(CuSz::default()),
            Mode::Speed => Box::new(CuSzx::default()),
        }
    }

    /// Encodes one plane: optional collapse → optional dedup → backend →
    /// optional tail. Writes a self-describing plane stream to `out`.
    ///
    /// The plane stays borrowed until zero collapse actually engages —
    /// only then is a mutable copy materialized (`Cow::to_mut`); owned
    /// planes are collapsed in place with no copy at all. Taking the `Cow`
    /// by `&mut` lets the caller recover an owned plane buffer afterwards
    /// and check it back into the workspace.
    fn encode_plane(
        &self,
        plane: &mut Cow<'_, [f64]>,
        abs_eb: f64,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let nbytes = (plane.len() * 8) as u64;
        let mut flags = 0u8;
        let mut backend_eb = abs_eb;

        // P3: quantization dictionary — the preferred route whenever the
        // plane's distinct-value count is small (E1 shows it almost always
        // is for QTensor tensors).
        if self.stages.dictionary && !plane.is_empty() {
            let _span = qcf_telemetry::span!("stage.dict");
            let quantized = match self.mode {
                // Ratio: a dedicated build pass (read values, write indices).
                Mode::Ratio => stream.launch(
                    &KernelSpec::streaming("qcf::dict_build", nbytes, nbytes / 2)
                        .with_flops(2 * plane.len() as u64),
                    || dict::quantize(&plane[..], abs_eb),
                ),
                // Speed: quantize + table insert + emission fuse into one
                // kernel below; the build itself is charged there.
                Mode::Speed => dict::quantize(&plane[..], abs_eb),
            };
            if let Some(q) = quantized {
                if qcf_telemetry::enabled() {
                    qcf_telemetry::registry()
                        .counter("stage.dict.engaged")
                        .inc();
                }
                let mut body = self.ws.take_u8_spare(plane.len() / 4 + 64);
                match self.mode {
                    Mode::Ratio => {
                        flags |= 8;
                        stream.launch(
                            &KernelSpec::streaming(
                                "qcf::dict_huffman_emit",
                                nbytes / 2,
                                nbytes / 16 + 64,
                            )
                            .with_pattern(MemoryPattern::BitSerial),
                            || dict::encode_ratio(&q, abs_eb, &mut body),
                        );
                    }
                    Mode::Speed => {
                        flags |= 16;
                        // Two effective passes over the values (table build,
                        // then emission) — the same pass structure as cuSZx.
                        stream.launch(
                            &KernelSpec::streaming(
                                "qcf::fused_dict_encode",
                                2 * nbytes,
                                nbytes / 8 + 64,
                            )
                            .with_pattern(MemoryPattern::Strided)
                            .with_flops(3 * plane.len() as u64),
                            || dict::encode_speed(&q, abs_eb, &mut body),
                        );
                    }
                }
                let finished = self.finish_plane(flags, &body, stream, out);
                self.ws.put_u8(body);
                return finished;
            }
        }

        // P2: zero collapse — engage only when it will pay for its half of
        // the error budget.
        if self.stages.zero_collapse {
            let _span = qcf_telemetry::span!("stage.zero_collapse");
            let threshold = abs_eb / 2.0;
            let frac = stream.launch(&KernelSpec::streaming("qcf::zero_probe", nbytes, 0), || {
                zero_frac(&plane[..], threshold)
            });
            if frac >= COLLAPSE_MIN_FRAC {
                if qcf_telemetry::enabled() {
                    qcf_telemetry::registry()
                        .counter("stage.zero_collapse.engaged")
                        .inc();
                }
                stream.launch(
                    &KernelSpec::streaming("qcf::zero_collapse", nbytes, nbytes),
                    || zero_collapse(plane.to_mut(), threshold),
                );
                backend_eb = abs_eb / 2.0;
                flags |= 1;
            }
        }

        // P3: block dedup — engage when enough blocks repeat.
        let backend = self.backend();
        let mut deduped = None;
        if self.stages.dedup {
            let _span = qcf_telemetry::span!("stage.dedup");
            let d = stream.launch(
                &KernelSpec::streaming("qcf::dedup_hash", nbytes, nbytes / 64)
                    .with_pattern(MemoryPattern::Strided),
                || dedup_blocks(&plane[..], DEDUP_BLOCK),
            );
            if d.dup_frac() >= DEDUP_MIN_FRAC {
                if qcf_telemetry::enabled() {
                    qcf_telemetry::registry()
                        .counter("stage.dedup.engaged")
                        .inc();
                }
                flags |= 2;
                deduped = Some(d);
            }
        }

        let mut backend_stream = self.ws.take_u8_spare(plane.len() + 64);
        {
            let _span = qcf_telemetry::span!("stage.backend");
            let res = match &deduped {
                Some(d) => backend.compress_into(
                    &d.unique,
                    ErrorBound::Abs(backend_eb),
                    stream,
                    &mut backend_stream,
                ),
                None => backend.compress_into(
                    &plane[..],
                    ErrorBound::Abs(backend_eb),
                    stream,
                    &mut backend_stream,
                ),
            };
            if let Err(e) = res {
                self.ws.put_u8(backend_stream);
                return Err(e);
            }
        }

        let mut body = self.ws.take_u8_spare(backend_stream.len() + 64);
        if let Some(d) = &deduped {
            write_uvarint(&mut body, d.block_size as u64);
            write_refs(&d.refs, d.n_unique, &mut body);
        }
        write_uvarint(&mut body, backend_stream.len() as u64);
        body.extend_from_slice(&backend_stream);
        self.ws.put_u8(backend_stream);
        let finished = self.finish_plane(flags, &body, stream, out);
        self.ws.put_u8(body);
        finished
    }

    /// Applies the optional LZ4 tail pass and writes the plane stream.
    fn finish_plane(
        &self,
        mut flags: u8,
        body: &[u8],
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if self.stages.lossless_tail {
            let _span = qcf_telemetry::span!("stage.tail");
            let tailed = stream.launch(
                &KernelSpec::streaming("qcf::tail_lz4", (body.len() * 3) as u64, body.len() as u64)
                    .with_pattern(MemoryPattern::Random),
                || {
                    let mut t = self.ws.take_u8_spare(body.len());
                    lz4_encode_block(body, &mut t);
                    t
                },
            );
            let wins = tailed.len() + 10 < body.len();
            if wins {
                if qcf_telemetry::enabled() {
                    qcf_telemetry::registry()
                        .counter("stage.tail.engaged")
                        .inc();
                }
                flags |= 4;
                out.push(flags);
                write_uvarint(out, body.len() as u64);
                write_uvarint(out, tailed.len() as u64);
                out.extend_from_slice(&tailed);
            }
            self.ws.put_u8(tailed);
            if wins {
                return Ok(());
            }
        }
        out.push(flags);
        out.extend_from_slice(body);
        Ok(())
    }

    /// Decodes one plane stream into `out` (cleared first, capacity
    /// reused); `n` is the plane's value count.
    fn decode_plane_into(
        &self,
        bytes: &[u8],
        pos: &mut usize,
        n: usize,
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let flags = *bytes.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if flags & !31 != 0 || (flags & 8 != 0 && flags & 16 != 0) {
            return Err(CodecError::Corrupt("unknown plane flags"));
        }

        // Undo the tail pass first.
        let body_storage;
        let (body, body_pos): (&[u8], usize) = if flags & 4 != 0 {
            let raw_len = read_uvarint(bytes, pos)? as usize;
            if raw_len > n * 16 + 4096 {
                return Err(CodecError::Corrupt("absurd tail length"));
            }
            let tailed_len = read_uvarint(bytes, pos)? as usize;
            if bytes.len() < *pos + tailed_len {
                return Err(CodecError::UnexpectedEof);
            }
            body_storage = stream.launch(
                &KernelSpec::streaming("qcf::untail_lz4", tailed_len as u64, raw_len as u64),
                || lz4_decode_block(&bytes[*pos..*pos + tailed_len], raw_len),
            )?;
            *pos += tailed_len;
            (&body_storage[..], 0)
        } else {
            (bytes, *pos)
        };
        let mut p = body_pos;

        if flags & 8 != 0 {
            let v = stream.launch(
                &KernelSpec::streaming("qcf::dict_huffman_decode", (n * 2) as u64, (n * 8) as u64)
                    .with_pattern(MemoryPattern::BitSerial),
                || dict::decode_ratio(body, &mut p),
            )?;
            // The dict decoders allocate their own result; swap it in and
            // pool the caller's previous buffer so nothing is wasted.
            self.ws.put_f64(std::mem::replace(out, v));
        } else if flags & 16 != 0 {
            let v = stream.launch(
                &KernelSpec::streaming("qcf::fused_dict_decode", (n * 2) as u64, (n * 8) as u64)
                    .with_pattern(MemoryPattern::Strided)
                    .with_flops(2 * n as u64),
                || dict::decode_speed(body, &mut p),
            )?;
            self.ws.put_f64(std::mem::replace(out, v));
        } else if flags & 2 != 0 {
            let block_size = read_uvarint(body, &mut p)? as usize;
            if block_size == 0 || block_size > 1 << 20 {
                return Err(CodecError::Corrupt("bad dedup block size"));
            }
            let refs = read_refs(body, &mut p, n.div_ceil(block_size))?;
            let backend_len = read_uvarint(body, &mut p)? as usize;
            if body.len() < p + backend_len {
                return Err(CodecError::UnexpectedEof);
            }
            let mut unique = self.ws.take_f64_spare(n);
            let res = (|| {
                decompress_any_into(&body[p..p + backend_len], stream, &mut unique)?;
                p += backend_len;
                stream.launch(
                    &KernelSpec::streaming(
                        "qcf::dedup_scatter",
                        (unique.len() * 8) as u64,
                        (n * 8) as u64,
                    )
                    .with_pattern(MemoryPattern::Strided),
                    || reassemble_blocks_into(&unique, &refs, block_size, n, out),
                )
            })();
            self.ws.put_f64(unique);
            res?;
        } else {
            let backend_len = read_uvarint(body, &mut p)? as usize;
            if body.len() < p + backend_len {
                return Err(CodecError::UnexpectedEof);
            }
            decompress_any_into(&body[p..p + backend_len], stream, out)?;
            p += backend_len;
        }
        if out.len() != n {
            return Err(CodecError::Corrupt("plane length mismatch"));
        }
        if flags & 4 == 0 {
            *pos = p;
        }
        Ok(())
    }
}

impl Compressor for QcfCompressor {
    fn name(&self) -> &'static str {
        match self.mode {
            Mode::Ratio => "QCF-ratio",
            Mode::Speed => "QCF-speed",
        }
    }

    fn id(&self) -> u8 {
        match self.mode {
            Mode::Ratio => QCF_RATIO_ID,
            Mode::Speed => QCF_SPEED_ID,
        }
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::ErrorBounded
    }

    fn compress_raw(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.compress_raw_into(data, bound, stream, &mut out)?;
        Ok(out)
    }

    fn compress_raw_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let t0 = lat_start();
        // Pipeline-level arena phase: one compress call is one phase, so
        // arena scratch taken by any stage below (or the backends they
        // call, via their own nested phases) is released in a single
        // cursor reset when the call returns.
        let res = with_arena_phase(|_| {
            let (min, max) = value_range(data);
            let abs_eb = bound.to_abs(max - min);
            if abs_eb.is_nan() || abs_eb <= 0.0 {
                return Err(CodecError::Unsupported("error bound must be positive"));
            }
            let n = data.len();
            let split = self.stages.deinterleave && n.is_multiple_of(2) && n > 0;

            stream_header_into(self.id(), n, out);
            out.push(split as u8);
            out.extend_from_slice(&abs_eb.to_le_bytes());

            if split {
                // P1: de-interleave into pooled planes. Ratio mode materializes
                // the planes (one streaming pass); speed mode folds the gather
                // into its fused encode kernel, so only flops are charged here.
                let deint_span = qcf_telemetry::span!("stage.deinterleave");
                let deint_spec = match self.mode {
                    Mode::Ratio => {
                        KernelSpec::streaming("qcf::deinterleave", (n * 8) as u64, (n * 8) as u64)
                    }
                    Mode::Speed => {
                        KernelSpec::streaming("qcf::deinterleave_fused", 0, 0).with_flops(n as u64)
                    }
                };
                let mut re = self.ws.take_f64_spare(n / 2);
                let mut im = self.ws.take_f64_spare(n / 2);
                stream.launch(&deint_spec, || deinterleave_into(data, &mut re, &mut im));
                drop(deint_span);
                // The planes are fully independent after the split, so encode
                // them concurrently into separate buffers and concatenate —
                // byte-identical to the sequential order. Stream time is charged
                // at submission (see `gpu_model::Stream`), so the virtual clock
                // is unaffected by the overlap. Each branch recovers its owned
                // plane into the workspace once encoding is done.
                if gpu_model::exec::worker_count() > 1 {
                    let ws = &self.ws;
                    let (re_buf, im_buf) = std::thread::scope(|s| {
                        let im_task = s.spawn(move || {
                            let mut plane = Cow::Owned(im);
                            let mut buf = ws.take_u8_spare(n * 4 + 64);
                            let res = self
                                .encode_plane(&mut plane, abs_eb, stream, &mut buf)
                                .map(|()| buf);
                            if let Cow::Owned(v) = plane {
                                ws.put_f64(v);
                            }
                            res
                        });
                        let mut plane = Cow::Owned(re);
                        let mut buf = ws.take_u8_spare(n * 4 + 64);
                        let re_res = self
                            .encode_plane(&mut plane, abs_eb, stream, &mut buf)
                            .map(|()| buf);
                        if let Cow::Owned(v) = plane {
                            ws.put_f64(v);
                        }
                        (re_res, im_task.join().expect("plane encoder panicked"))
                    });
                    let (re_buf, im_buf) = (re_buf?, im_buf?);
                    out.extend_from_slice(&re_buf);
                    out.extend_from_slice(&im_buf);
                    self.ws.put_u8(re_buf);
                    self.ws.put_u8(im_buf);
                } else {
                    for half in [re, im] {
                        let mut plane = Cow::Owned(half);
                        let res = self.encode_plane(&mut plane, abs_eb, stream, out);
                        if let Cow::Owned(v) = plane {
                            self.ws.put_f64(v);
                        }
                        res?;
                    }
                }
            } else {
                // Borrowed view: encode_plane copies only if zero collapse
                // actually engages, instead of cloning the whole input up front;
                // if it did copy, the copy is pooled for next time.
                let mut plane = Cow::Borrowed(data);
                let res = self.encode_plane(&mut plane, abs_eb, stream, out);
                if let Cow::Owned(v) = plane {
                    self.ws.put_f64(v);
                }
                res?;
            }
            if qcf_telemetry::enabled() && !out.is_empty() {
                qcf_telemetry::registry()
                    .float_gauge(&format!("compressor.{}.cr", self.name()))
                    .set((n * 8) as f64 / out.len() as f64);
            }
            Ok(())
        });
        if let Some(t0) = t0 {
            self.lat_encode.observe(t0.elapsed().as_secs_f64() * 1e6);
        }
        res
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::new();
        self.decompress_raw_into(bytes, stream, &mut out)?;
        Ok(out)
    }

    fn decompress_raw_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let t0 = lat_start();
        // Mirror of the compress-side phase: see `compress_raw_into`.
        let res = with_arena_phase(|_| {
            let (n, mut pos) = read_stream_header(bytes, self.id())?;
            let split = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
            pos += 1;
            if split > 1 || (split == 1 && n % 2 != 0) {
                return Err(CodecError::Corrupt("bad split flag"));
            }
            if bytes.len() < pos + 8 {
                return Err(CodecError::UnexpectedEof);
            }
            pos += 8; // abs_eb: informational in the header, not needed to decode

            if split == 1 {
                let mut re = self.ws.take_f64_spare(n / 2);
                let mut im = self.ws.take_f64_spare(n / 2);
                let res = (|| {
                    self.decode_plane_into(bytes, &mut pos, n / 2, stream, &mut re)?;
                    self.decode_plane_into(bytes, &mut pos, n / 2, stream, &mut im)?;
                    stream.launch(
                        &KernelSpec::streaming("qcf::interleave", (n * 8) as u64, (n * 8) as u64),
                        || interleave_into(&re, &im, out),
                    );
                    Ok(())
                })();
                self.ws.put_f64(re);
                self.ws.put_f64(im);
                res
            } else {
                self.decode_plane_into(bytes, &mut pos, n, stream, out)
            }
        });
        if let Some(t0) = t0 {
            self.lat_decode.observe(t0.elapsed().as_secs_f64() * 1e6);
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compressors::metrics::assert_bound;
    use gpu_model::DeviceSpec;
    use rand::{Rng, SeedableRng};

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    /// QTensor-like test data: interleaved complex, mostly tiny magnitudes,
    /// repeated gate-structured slices.
    fn tensor_like(n_complex: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let motif: Vec<(f64, f64)> = (0..64)
            .map(|k| {
                let phase = k as f64 * 0.3;
                (phase.cos() * 0.5, phase.sin() * 0.5)
            })
            .collect();
        let mut out = Vec::with_capacity(n_complex * 2);
        for i in 0..n_complex {
            if rng.gen::<f64>() < 0.6 {
                // near-zero amplitude with noise
                out.push(rng.gen_range(-1e-7..1e-7));
                out.push(rng.gen_range(-1e-7..1e-7));
            } else {
                let (re, im) = motif[i % 64];
                out.push(re);
                out.push(im);
            }
        }
        out
    }

    #[test]
    fn ratio_mode_roundtrip_within_bound() {
        let data = tensor_like(8192, 1);
        let c = QcfCompressor::ratio();
        for eb in [1e-2, 1e-3, 1e-5] {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn speed_mode_roundtrip_within_bound() {
        let data = tensor_like(8192, 2);
        let c = QcfCompressor::speed();
        for eb in [1e-2, 1e-4] {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn ratio_mode_beats_plain_cusz_substantially() {
        let data = tensor_like(32_768, 3);
        let eb = 1e-4;
        let qcf = QcfCompressor::ratio()
            .compress(&data, ErrorBound::Abs(eb), &stream())
            .unwrap()
            .len();
        let cusz = CuSz::default()
            .compress(&data, ErrorBound::Abs(eb), &stream())
            .unwrap()
            .len();
        let gain = cusz as f64 / qcf as f64;
        assert!(gain > 3.0, "framework gain over cuSZ only {gain:.2}x");
    }

    #[test]
    fn speed_mode_beats_plain_cuszx_ratio() {
        let data = tensor_like(32_768, 4);
        let eb = 1e-4;
        let qcf = QcfCompressor::speed()
            .compress(&data, ErrorBound::Abs(eb), &stream())
            .unwrap()
            .len();
        let szx = CuSzx::default()
            .compress(&data, ErrorBound::Abs(eb), &stream())
            .unwrap()
            .len();
        let gain = szx as f64 / qcf as f64;
        assert!(gain > 1.5, "speed-mode gain over cuSZx only {gain:.2}x");
    }

    #[test]
    fn stage_toggles_all_roundtrip() {
        let data = tensor_like(2048, 5);
        let eb = 1e-4;
        for mask in 0..32u8 {
            let toggles = StageToggles {
                deinterleave: mask & 1 != 0,
                zero_collapse: mask & 2 != 0,
                dedup: mask & 4 != 0,
                lossless_tail: mask & 8 != 0,
                dictionary: mask & 16 != 0,
            };
            for mode in [Mode::Ratio, Mode::Speed] {
                let c = QcfCompressor::with_stages(mode, toggles);
                let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
                let rec = c.decompress(&bytes, &stream()).unwrap();
                assert_bound(&data, &rec, eb);
            }
        }
    }

    #[test]
    fn odd_length_falls_back_to_plain() {
        let mut data = tensor_like(100, 6);
        data.pop(); // odd length
        let c = QcfCompressor::ratio();
        let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_eq!(rec.len(), data.len());
        assert_bound(&data, &rec, 1e-4);
    }

    #[test]
    fn relative_bound_resolved_once_globally() {
        let data = tensor_like(4096, 7);
        let c = QcfCompressor::ratio();
        let bytes = c.compress(&data, ErrorBound::Rel(1e-3), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        let (min, max) = value_range(&data);
        assert_bound(&data, &rec, 1e-3 * (max - min));
    }

    #[test]
    fn empty_input() {
        let c = QcfCompressor::ratio();
        let bytes = c.compress(&[], ErrorBound::Abs(1e-3), &stream()).unwrap();
        assert!(c.decompress(&bytes, &stream()).unwrap().is_empty());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let data = tensor_like(1024, 8);
        let c = QcfCompressor::ratio();
        let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        for cut in [0, 1, 3, 12, bytes.len() / 2, bytes.len() - 1] {
            let _ = c.decompress(&bytes[..cut], &stream());
        }
        let mut bad = bytes.clone();
        for i in (0..bad.len()).step_by(17) {
            bad[i] ^= 0x81;
        }
        let _ = c.decompress(&bad, &stream());
    }

    #[test]
    fn speed_mode_stays_near_cuszx_throughput() {
        let data = tensor_like(1 << 17, 9);
        let eb = 1e-4;
        let s_qcf = stream();
        QcfCompressor::speed()
            .compress(&data, ErrorBound::Abs(eb), &s_qcf)
            .unwrap();
        let s_szx = stream();
        CuSzx::default()
            .compress(&data, ErrorBound::Abs(eb), &s_szx)
            .unwrap();
        let slowdown = s_qcf.elapsed_s() / s_szx.elapsed_s();
        assert!(
            slowdown < 2.5,
            "speed mode {slowdown:.2}x slower than cuSZx — should be comparable"
        );
    }
}
