//! # qcf-core — the paper's contribution
//!
//! An error-bounded compression framework for quantum circuit simulation
//! tensors (Shah et al., IPDPS'23 — see DESIGN.md at the workspace root):
//!
//! * [`stages`] / [`dict`] — pre-processing: zero collapse (P2), the
//!   quantization dictionary (P3, the big lever: QTensor tensors hold few
//!   distinct values) and block dedup (P4).
//! * [`framework`] — [`QcfCompressor`]: the configurable pipeline with a
//!   ratio mode (cuSZ backend, all stages) and a speed mode (cuSZx backend,
//!   single-pass stages), usable anywhere a
//!   [`Compressor`](compressors::Compressor) is — including inside
//!   `qtensor`'s compressed contraction.
//! * [`fidelity`] — first-order error-propagation model + noise-injection
//!   characterization of how tensor-level bounds move the final energy.
//! * [`adaptive`] — measurement-driven selection of the loosest bound that
//!   meets a user's energy-fidelity target.

pub mod adaptive;
pub mod dict;
pub mod fidelity;
pub mod framework;
pub mod stages;

pub use adaptive::{search_bound, AdaptiveResult};
pub use fidelity::{calibrate, measure_noise_impact, predict_energy_error, suggest_bound};
pub use framework::{Mode, QcfCompressor, StageToggles, QCF_RATIO_ID, QCF_SPEED_ID};
