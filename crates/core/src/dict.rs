//! The quantization-dictionary stage (P3) — the framework's biggest lever.
//!
//! Measured QTensor intermediates (experiment E1) contain very few distinct
//! values: entries are sums of products of a handful of gate-matrix entries,
//! so a tensor of thousands of elements typically holds only dozens to a few
//! hundred distinct values, scattered (not blocked). Generic predictors see
//! high-entropy deltas; a *dictionary* sees a tiny alphabet.
//!
//! The stage quantizes every value to `q = round(v / 2eb)` — an
//! error-bounded map (`|v − q·2eb| ≤ eb`) that also merges near-duplicates
//! — then stores the distinct `q`s once and codes the index stream:
//!
//! * **Ratio flavour**: the index stream (u8 when D ≤ 256, else u16) runs
//!   through the DEFLATE-style byte codec — Huffman captures the alphabet
//!   skew and LZ77 captures the strong *positional* repetition tensor
//!   slices exhibit; zero-heavy or periodic streams go far below 1
//!   bit/value.
//! * **Speed flavour**: a frequency-sorted *hot/cold* two-level code — the
//!   `2^b` most frequent symbols cost `1 + b` bits, the rest `1 + ⌈log₂ D⌉`
//!   bits — optionally fronted by a *stride predictor*: tensor slices tile
//!   short patterns, so `idx[i] == idx[i − L]` for the innermost repeat
//!   stride `L` (and trivially inside near-zero regions). Matches are
//!   run-length coded (9 bits per ≤256-run), misses fall back to the
//!   hot/cold code. The encoder counts hits for a few candidate strides,
//!   computes the exact bit cost of all three layouts (plain fixed-width,
//!   hot/cold, stride-RLE) and picks the smallest — all single-pass,
//!   block-parallel work of the same shape as cuSZx's constant-block
//!   detection.
//!
//! When the distinct count exceeds [`DICT_CAP`] the stage reports
//! inapplicable and the framework falls back to its backend compressor.

use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::bitpack::unpack;
use codec_kit::varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use codec_kit::CodecError;
use compressors::gdeflate::{deflate_bytes, inflate_bytes};
use std::collections::HashMap;

/// Maximum dictionary entries before the stage declares inapplicability.
pub const DICT_CAP: usize = 4096;

/// Quantized representation: distinct codes + per-value index.
#[derive(Debug, Clone)]
pub struct Quantized {
    /// Distinct quantization codes, first-occurrence order.
    pub table: Vec<i64>,
    /// Per-value index into `table`.
    pub indices: Vec<u32>,
    /// Index of code 0 in `table`, if present.
    pub zero_index: Option<u32>,
}

/// Quantizes a plane at bound `eb`; `None` when the dictionary would
/// overflow [`DICT_CAP`] or a code would overflow the safe integer range.
pub fn quantize(plane: &[f64], eb: f64) -> Option<Quantized> {
    debug_assert!(eb > 0.0);
    let twoeb = 2.0 * eb;
    let mut map: HashMap<i64, u32> = HashMap::with_capacity(256);
    let mut table: Vec<i64> = Vec::new();
    let mut indices: Vec<u32> = Vec::with_capacity(plane.len());
    for &v in plane {
        let scaled = v / twoeb;
        if scaled.is_nan() || scaled.abs() >= 4.5e15 {
            return None; // code would lose integer exactness (or NaN)
        }
        let q = scaled.round() as i64;
        let next = table.len() as u32;
        let idx = *map.entry(q).or_insert_with(|| {
            table.push(q);
            next
        });
        if table.len() > DICT_CAP {
            return None;
        }
        indices.push(idx);
    }
    let zero_index = map.get(&0).copied();
    Some(Quantized {
        table,
        indices,
        zero_index,
    })
}

fn write_table(table: &[i64], eb: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&eb.to_le_bytes());
    write_uvarint(out, table.len() as u64);
    for &q in table {
        write_ivarint(out, q);
    }
}

fn read_table(data: &[u8], pos: &mut usize) -> Result<(Vec<i64>, f64), CodecError> {
    if data.len() < *pos + 8 {
        return Err(CodecError::UnexpectedEof);
    }
    let eb = f64::from_le_bytes(data[*pos..*pos + 8].try_into().unwrap());
    *pos += 8;
    if eb.is_nan() || eb <= 0.0 || !eb.is_finite() {
        return Err(CodecError::Corrupt("bad dictionary error bound"));
    }
    let d = read_uvarint(data, pos)? as usize;
    if d == 0 || d > DICT_CAP {
        return Err(CodecError::Corrupt("dictionary size out of range"));
    }
    let mut table = Vec::with_capacity(d);
    for _ in 0..d {
        table.push(read_ivarint(data, pos)?);
    }
    Ok((table, eb))
}

/// Ratio flavour: dictionary + DEFLATE-coded index stream. Huffman inside
/// the byte codec captures symbol skew; LZ77 captures positional repetition
/// (tensor slices repeat their index patterns wholesale).
pub fn encode_ratio(q: &Quantized, eb: f64, out: &mut Vec<u8>) {
    write_uvarint(out, q.indices.len() as u64);
    write_table(&q.table, eb, out);
    let wide = q.table.len() > 256;
    out.push(wide as u8);
    let bytes: Vec<u8> = if wide {
        q.indices
            .iter()
            .flat_map(|&i| (i as u16).to_le_bytes())
            .collect()
    } else {
        q.indices.iter().map(|&i| i as u8).collect()
    };
    out.extend_from_slice(&deflate_bytes(&bytes));
}

/// Decodes [`encode_ratio`] back to plane values.
pub fn decode_ratio(data: &[u8], pos: &mut usize) -> Result<Vec<f64>, CodecError> {
    let n = read_uvarint(data, pos)? as usize;
    if n > 1 << 40 {
        return Err(CodecError::Corrupt("absurd dictionary element count"));
    }
    if n > (1 << 16) + data.len().saturating_mul(1 << 23) {
        return Err(CodecError::Corrupt(
            "declared length exceeds remaining input",
        ));
    }
    let (table, eb) = read_table(data, pos)?;
    let wide = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
    *pos += 1;
    if wide > 1 {
        return Err(CodecError::Corrupt("bad index-width flag"));
    }
    let per = if wide == 1 { 2usize } else { 1 };
    let raw = inflate_bytes(data, pos, n * per)?;
    let twoeb = 2.0 * eb;
    let lookup = |idx: usize| -> Result<f64, CodecError> {
        table
            .get(idx)
            .map(|&q| q as f64 * twoeb)
            .ok_or(CodecError::Corrupt("dictionary index out of range"))
    };
    if wide == 1 {
        raw.chunks_exact(2)
            .map(|c| lookup(u16::from_le_bytes([c[0], c[1]]) as usize))
            .collect()
    } else {
        raw.iter().map(|&b| lookup(b as usize)).collect()
    }
}

/// Speed flavour: frequency-sorted dictionary + hot/cold two-level code.
///
/// The table is permuted so the most frequent symbol has index 0; the
/// stream stores the permuted table, so decode needs no side information
/// beyond the chosen hot width `b`.
pub fn encode_speed(q: &Quantized, eb: f64, out: &mut Vec<u8>) {
    let n = q.indices.len();
    let d = q.table.len();
    write_uvarint(out, n as u64);

    // Frequency-sort the table and remap indices.
    let mut freqs = vec![0u64; d];
    for &idx in &q.indices {
        freqs[idx as usize] += 1;
    }
    let mut order: Vec<u32> = (0..d as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(freqs[i as usize]));
    let mut remap = vec![0u32; d];
    let mut sorted_table = Vec::with_capacity(d);
    let mut sorted_freqs = Vec::with_capacity(d);
    for (new, &old) in order.iter().enumerate() {
        remap[old as usize] = new as u32;
        sorted_table.push(q.table[old as usize]);
        sorted_freqs.push(freqs[old as usize]);
    }
    write_table(&sorted_table, eb, out);

    // Hot/cold width minimizing that layout's bits.
    let full = index_width(d);
    let prefix: Vec<u64> = sorted_freqs
        .iter()
        .scan(0u64, |acc, &f| {
            *acc += f;
            Some(*acc)
        })
        .collect();
    let plain_cost = n as u64 * full as u64;
    let mut hot_choice: Option<(u32, u64)> = None;
    for b in 0..full {
        let hot_syms = (1usize << b).min(d);
        let hot = prefix[hot_syms - 1];
        let cold = n as u64 - hot;
        let cost = n as u64 + hot * b as u64 + cold * full as u64;
        if hot_choice.is_none_or(|(_, c)| cost < c) {
            hot_choice = Some((b, cost));
        }
    }
    let (b, hot_cost) = hot_choice.unwrap_or((0, plain_cost));

    // Stride predictor: pick the lag with the most idx[i] == idx[i-L] hits
    // (out-of-range predecessors predict index 0, the top symbol).
    let remapped: Vec<u32> = q.indices.iter().map(|&i| remap[i as usize]).collect();
    // Power-of-two candidate strides up to 4096 — tensor dims are powers of
    // two, so the innermost repeated extent is one of these.
    const LAGS: [usize; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let mut best_lag = 1usize;
    let mut best_hits = 0u64;
    for &lag in &LAGS {
        let hits = remapped
            .iter()
            .enumerate()
            .filter(|&(i, &idx)| idx == if i >= lag { remapped[i - lag] } else { 0 })
            .count() as u64;
        if hits > best_hits {
            best_hits = hits;
            best_lag = lag;
        }
    }
    // Hot width for the misses alone.
    let mut miss_freqs = vec![0u64; d];
    let mut miss_total = 0u64;
    for (i, &idx) in remapped.iter().enumerate() {
        let pred = if i >= best_lag {
            remapped[i - best_lag]
        } else {
            0
        };
        if idx != pred {
            miss_freqs[idx as usize] += 1;
            miss_total += 1;
        }
    }
    let miss_prefix: Vec<u64> = miss_freqs
        .iter()
        .scan(0u64, |acc, &f| {
            *acc += f;
            Some(*acc)
        })
        .collect();
    let mut stride_choice: Option<(u32, u64)> = None;
    for sb in 0..=full {
        let hot_syms = (1usize << sb).min(d);
        let hot = miss_prefix[hot_syms.max(1) - 1];
        let cold = miss_total - hot;
        // Miss bits only; the match-run chunk cost is added below once the
        // exact run count is known (it does not depend on sb).
        let cost = miss_total * 2 + hot * sb as u64 + cold * full as u64;
        if stride_choice.is_none_or(|(_, c)| cost < c) {
            stride_choice = Some((sb, cost));
        }
    }
    let (sb, miss_cost) = stride_choice.unwrap_or((0, u64::MAX));
    // Count match runs exactly for the run-chunk cost.
    let mut run_chunks = 0u64;
    {
        let mut i = 0usize;
        while i < n {
            let pred = if i >= best_lag {
                remapped[i - best_lag]
            } else {
                0
            };
            if remapped[i] == pred {
                let mut run = 1usize;
                while i + run < n {
                    let j = i + run;
                    let pred = if j >= best_lag {
                        remapped[j - best_lag]
                    } else {
                        0
                    };
                    if remapped[j] != pred {
                        break;
                    }
                    run += 1;
                }
                run_chunks += run.div_ceil(256) as u64;
                i += run;
            } else {
                i += 1;
            }
        }
    }
    let stride_cost = 9 * run_chunks + miss_cost;

    let mut w = BitWriter::with_capacity(n / 4 + 16);
    if stride_cost < hot_cost.min(plain_cost) {
        out.push(2);
        out.push(sb as u8);
        out.push(best_lag.trailing_zeros() as u8); // lag stored as exponent
        let hot_limit = 1u32 << sb;
        let mut i = 0usize;
        while i < n {
            let pred = if i >= best_lag {
                remapped[i - best_lag]
            } else {
                0
            };
            if remapped[i] == pred {
                let mut run = 1usize;
                while i + run < n {
                    let j = i + run;
                    let pred = if j >= best_lag {
                        remapped[j - best_lag]
                    } else {
                        0
                    };
                    if remapped[j] != pred {
                        break;
                    }
                    run += 1;
                }
                let mut rest = run;
                while rest > 0 {
                    let chunk = rest.min(256);
                    w.write_bit(false);
                    w.write_bits((chunk - 1) as u64, 8);
                    rest -= chunk;
                }
                i += run;
            } else {
                w.write_bit(true);
                let idx = remapped[i];
                if idx < hot_limit {
                    w.write_bit(false);
                    w.write_bits(idx as u64, sb);
                } else {
                    w.write_bit(true);
                    w.write_bits(idx as u64, full);
                }
                i += 1;
            }
        }
    } else if hot_cost < plain_cost {
        out.push(1);
        out.push(b as u8);
        let hot_limit = 1u32 << b;
        for &idx in &remapped {
            if idx < hot_limit {
                w.write_bit(false);
                w.write_bits(idx as u64, b);
            } else {
                w.write_bit(true);
                w.write_bits(idx as u64, full);
            }
        }
    } else {
        out.push(0);
        for &idx in &remapped {
            w.write_bits(idx as u64, full);
        }
    }
    let payload = w.finish();
    write_uvarint(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

/// Decodes [`encode_speed`].
pub fn decode_speed(data: &[u8], pos: &mut usize) -> Result<Vec<f64>, CodecError> {
    let n = read_uvarint(data, pos)? as usize;
    if n > 1 << 40 {
        return Err(CodecError::Corrupt("absurd dictionary element count"));
    }
    if n > (1 << 16) + data.len().saturating_mul(1 << 23) {
        return Err(CodecError::Corrupt(
            "declared length exceeds remaining input",
        ));
    }
    let (table, eb) = read_table(data, pos)?;
    let mode = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
    *pos += 1;
    let full = index_width(table.len());
    let twoeb = 2.0 * eb;

    let lookup = |idx: u64| -> Result<f64, CodecError> {
        table
            .get(idx as usize)
            .map(|&q| q as f64 * twoeb)
            .ok_or(CodecError::Corrupt("dictionary index out of range"))
    };

    match mode {
        1 => {
            let b = *data.get(*pos).ok_or(CodecError::UnexpectedEof)? as u32;
            *pos += 1;
            if b >= 32 {
                return Err(CodecError::Corrupt("hot width out of range"));
            }
            let payload_len = read_uvarint(data, pos)? as usize;
            if data.len() < *pos + payload_len {
                return Err(CodecError::UnexpectedEof);
            }
            let mut r = BitReader::new(&data[*pos..*pos + payload_len]);
            *pos += payload_len;
            // every symbol costs ≥ 1 payload bit — reject forged counts
            // before reserving
            if n > payload_len.saturating_mul(8) {
                return Err(CodecError::Corrupt("declared length exceeds payload"));
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let cold = r.read_bit()?;
                let idx = if cold {
                    r.read_bits(full)?
                } else {
                    r.read_bits(b)?
                };
                out.push(lookup(idx)?);
            }
            Ok(out)
        }
        2 => {
            let sb = *data.get(*pos).ok_or(CodecError::UnexpectedEof)? as u32;
            *pos += 1;
            if sb >= 32 {
                return Err(CodecError::Corrupt("hot width out of range"));
            }
            let lag_exp = *data.get(*pos).ok_or(CodecError::UnexpectedEof)? as u32;
            *pos += 1;
            if lag_exp > 12 {
                return Err(CodecError::Corrupt("stride lag out of range"));
            }
            let lag = 1usize << lag_exp;
            let payload_len = read_uvarint(data, pos)? as usize;
            if data.len() < *pos + payload_len {
                return Err(CodecError::UnexpectedEof);
            }
            let mut r = BitReader::new(&data[*pos..*pos + payload_len]);
            *pos += payload_len;
            // capped reservation: a run chunk expands 9 bits into ≤ 256
            // values, so trust growth rather than the declared count
            let mut idxs: Vec<u32> = Vec::with_capacity(n.min(1 << 20));
            while idxs.len() < n {
                if r.read_bit()? {
                    let cold = r.read_bit()?;
                    let idx = if cold {
                        r.read_bits(full)?
                    } else {
                        r.read_bits(sb)?
                    } as u32;
                    if idx as usize >= table.len() {
                        return Err(CodecError::Corrupt("dictionary index out of range"));
                    }
                    idxs.push(idx);
                } else {
                    let run = r.read_bits(8)? as usize + 1;
                    if idxs.len() + run > n {
                        return Err(CodecError::Corrupt("run overruns output"));
                    }
                    for _ in 0..run {
                        let i = idxs.len();
                        let pred = if i >= lag { idxs[i - lag] } else { 0 };
                        idxs.push(pred);
                    }
                }
            }
            idxs.into_iter().map(|i| lookup(i as u64)).collect()
        }
        0 => {
            let payload_len = read_uvarint(data, pos)? as usize;
            if data.len() < *pos + payload_len {
                return Err(CodecError::UnexpectedEof);
            }
            let mut r = BitReader::new(&data[*pos..*pos + payload_len]);
            *pos += payload_len;
            let packed = unpack(&mut r, full, n)?;
            packed.into_iter().map(lookup).collect()
        }
        _ => Err(CodecError::Corrupt("bad dictionary mode byte")),
    }
}

/// Bits needed per index for a `d`-entry table (0 when one entry).
#[inline]
pub fn index_width(d: usize) -> u32 {
    if d <= 1 {
        0
    } else {
        64 - (d as u64 - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn sample_plane(n: usize, zero_frac: f64, alphabet: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let values: Vec<f64> = (0..alphabet)
            .map(|k| (k as f64 * 0.7).sin() * 0.5)
            .collect();
        (0..n)
            .map(|_| {
                if rng.gen::<f64>() < zero_frac {
                    rng.gen_range(-1e-8..1e-8)
                } else {
                    values[rng.gen_range(0..alphabet)]
                }
            })
            .collect()
    }

    fn check_bound(orig: &[f64], rec: &[f64], eb: f64) {
        for (a, b) in orig.iter().zip(rec) {
            assert!((a - b).abs() <= eb * (1.0 + 1e-12), "|{a}-{b}| > {eb}");
        }
    }

    #[test]
    fn quantize_builds_small_table() {
        let plane = sample_plane(4096, 0.6, 50, 1);
        let q = quantize(&plane, 1e-4).unwrap();
        assert!(q.table.len() <= 52, "table has {} entries", q.table.len());
        assert!(q.zero_index.is_some());
        assert_eq!(q.indices.len(), plane.len());
    }

    #[test]
    fn quantize_bails_on_dense_values() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let plane: Vec<f64> = (0..20_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert!(
            quantize(&plane, 1e-7).is_none(),
            "20k random values at 1e-7 must overflow"
        );
    }

    #[test]
    fn quantize_bails_on_nan_or_overflow() {
        assert!(quantize(&[f64::NAN], 1e-4).is_none());
        assert!(quantize(&[1e300], 1e-9).is_none());
    }

    #[test]
    fn ratio_roundtrip_within_bound() {
        let plane = sample_plane(8192, 0.7, 80, 3);
        let eb = 1e-4;
        let q = quantize(&plane, eb).unwrap();
        let mut buf = Vec::new();
        encode_ratio(&q, eb, &mut buf);
        let mut pos = 0;
        let rec = decode_ratio(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        check_bound(&plane, &rec, eb);
        // zero-heavy small-alphabet stream should crush
        let cr = (plane.len() * 8) as f64 / buf.len() as f64;
        assert!(cr > 12.0, "ratio-flavour CR only {cr:.1}");
    }

    #[test]
    fn speed_roundtrip_within_bound_hot_cold() {
        let plane = sample_plane(8192, 0.7, 80, 4);
        let eb = 1e-4;
        let q = quantize(&plane, eb).unwrap();
        let mut buf = Vec::new();
        encode_speed(&q, eb, &mut buf);
        let mut pos = 0;
        let rec = decode_speed(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        check_bound(&plane, &rec, eb);
        let cr = (plane.len() * 8) as f64 / buf.len() as f64;
        assert!(cr > 10.0, "speed-flavour CR only {cr:.1}");
    }

    #[test]
    fn speed_roundtrip_no_zeros_plain_mode() {
        let plane = sample_plane(2048, 0.0, 40, 5);
        let eb = 1e-5;
        let q = quantize(&plane, eb).unwrap();
        let mut buf = Vec::new();
        encode_speed(&q, eb, &mut buf);
        let mut pos = 0;
        let rec = decode_speed(&buf, &mut pos).unwrap();
        check_bound(&plane, &rec, eb);
    }

    #[test]
    fn single_distinct_value_is_nearly_free() {
        let plane = vec![0.25f64; 10_000];
        let eb = 1e-6;
        let q = quantize(&plane, eb).unwrap();
        assert_eq!(q.table.len(), 1);
        let mut buf = Vec::new();
        encode_speed(&q, eb, &mut buf);
        assert!(buf.len() < 64, "constant plane took {} bytes", buf.len());
        let mut pos = 0;
        check_bound(&plane, &decode_speed(&buf, &mut pos).unwrap(), eb);
    }

    #[test]
    fn empty_plane() {
        let q = quantize(&[], 1e-4).unwrap();
        let mut buf = Vec::new();
        encode_ratio(&q, 1e-4, &mut buf);
        // An empty index stream still writes a (degenerate) table; the
        // framework never calls the dictionary on empty planes, but the
        // codec itself must not panic.
        assert!(quantize(&[], 1e-4).unwrap().indices.is_empty());
        let _ = buf;
    }

    #[test]
    fn corrupt_streams_error() {
        let plane = sample_plane(512, 0.5, 30, 6);
        let q = quantize(&plane, 1e-4).unwrap();
        let mut ratio = Vec::new();
        encode_ratio(&q, 1e-4, &mut ratio);
        let mut speed = Vec::new();
        encode_speed(&q, 1e-4, &mut speed);
        for buf in [&ratio, &speed] {
            for cut in [0usize, 1, 5, buf.len() / 2] {
                let mut pos = 0;
                let _ = decode_ratio(&buf[..cut], &mut pos);
                let mut pos = 0;
                let _ = decode_speed(&buf[..cut], &mut pos);
            }
        }
    }

    #[test]
    fn index_width_edge_cases() {
        assert_eq!(index_width(0), 0);
        assert_eq!(index_width(1), 0);
        assert_eq!(index_width(2), 1);
        assert_eq!(index_width(3), 2);
        assert_eq!(index_width(256), 8);
        assert_eq!(index_width(257), 9);
    }
}
