//! Adaptive error-bound selection.
//!
//! The user states fidelity in application terms ("final energy within 1 %
//! of truth"); the compressor needs a tensor-level bound. This module picks
//! the loosest bound that meets the target by measuring actual compressed
//! runs on the instance (or a pilot), descending a geometric grid — the
//! operational version of the paper's "leverage the analysis to ensure the
//! fidelity of reconstructed data".

use compressors::{Compressor, ErrorBound};
use qcircuit::{Graph, QaoaParams};
use qtensor::compressed::CompressingHook;
use qtensor::energy::Simulator;
use qtensor::ContractError;

/// Outcome of an adaptive search.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// Chosen absolute tensor-level bound.
    pub bound: f64,
    /// Relative energy error measured at that bound.
    pub rel_energy_error: f64,
    /// Aggregate compression ratio achieved at that bound.
    pub compression_ratio: f64,
    /// Bounds tried, loosest first, with their relative errors.
    pub trace: Vec<(f64, f64)>,
}

/// Finds the loosest bound from `start` (descending by `factor`) whose
/// measured relative energy error is below `target_rel`.
///
/// Returns an error if even the tightest trial (after `max_steps`) misses
/// the target — callers should then fall back to lossless.
pub fn search_bound(
    compressor: &dyn Compressor,
    graph: &Graph,
    params: &QaoaParams,
    target_rel: f64,
    start: f64,
    factor: f64,
    max_steps: usize,
) -> Result<AdaptiveResult, ContractError> {
    assert!(start > 0.0 && factor > 1.0 && max_steps > 0);
    let sim = Simulator::default();
    let exact = sim.energy(graph, params)?.energy;
    let mut trace = Vec::new();
    let mut eb = start;
    for _ in 0..max_steps {
        let mut hook = CompressingHook::new(compressor, ErrorBound::Abs(eb), 2);
        let e = sim.energy_with_hook(graph, params, &mut hook)?.energy;
        let rel = (e - exact).abs() / exact.abs().max(f64::MIN_POSITIVE);
        trace.push((eb, rel));
        if rel <= target_rel {
            return Ok(AdaptiveResult {
                bound: eb,
                rel_energy_error: rel,
                compression_ratio: hook.stats.ratio(),
                trace,
            });
        }
        eb /= factor;
    }
    Err(ContractError::Hook(format!(
        "no bound ≥ {eb:.3e} met target {target_rel}; trace: {trace:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::QcfCompressor;
    use compressors::cusz::CuSz;

    fn instance() -> (Graph, QaoaParams) {
        (
            Graph::random_regular(8, 3, 44),
            QaoaParams::new(vec![0.4, 0.7], vec![0.25, 0.5]),
        )
    }

    #[test]
    fn finds_bound_meeting_one_percent() {
        let (g, p) = instance();
        let comp = CuSz::default();
        let r = search_bound(&comp, &g, &p, 0.01, 1e-1, 4.0, 12).unwrap();
        assert!(r.rel_energy_error <= 0.01);
        assert!(r.bound > 0.0);
        assert!(!r.trace.is_empty());
        // Trace is descending in bound.
        for w in r.trace.windows(2) {
            assert!(w[1].0 < w[0].0);
        }
    }

    #[test]
    fn framework_achieves_target_with_ratio() {
        let (g, p) = instance();
        let comp = QcfCompressor::ratio();
        let r = search_bound(&comp, &g, &p, 0.05, 1e-2, 4.0, 10).unwrap();
        assert!(r.rel_energy_error <= 0.05);
        assert!(r.compression_ratio >= 1.0);
    }

    #[test]
    fn impossible_target_errors_cleanly() {
        let (g, p) = instance();
        let comp = CuSz::default();
        // One very loose step only — certain to miss a 1e-12 target.
        let res = search_bound(&comp, &g, &p, 1e-12, 1.0, 2.0, 1);
        assert!(res.is_err());
    }
}
