//! Error-impact analysis (contribution 2).
//!
//! How does a pointwise bound `ε` on every intermediate tensor move the
//! final QAOA energy? Each bucket elimination is multilinear in its inputs,
//! so to first order the scalar error is a sum of independent, bounded
//! per-tensor contributions. Modelling those contributions as independent
//! zero-mean perturbations of magnitude ≤ ε gives the random-walk estimate
//!
//! `|ΔE| ≲ C · ε · sqrt(T)`
//!
//! with `T` the number of perturbed intermediates and `C` a circuit-family
//! constant absorbing tensor norms. The experiments calibrate `C` once on a
//! pilot instance ([`calibrate`]) and then *predict* energy error for other
//! bounds — experiment E8 plots prediction vs. measurement.
//!
//! This module is the workspace's *shared bound-propagation model*: the
//! accumulation primitives live in [`qtensor::ledger`] (re-exported here as
//! [`rss_accumulate`] / [`uniform_rss`]) so the error-budget ledger inside
//! `CompressedState` and the `CompressingHook` contraction stats apply the
//! identical arithmetic, and this module turns their accumulated bounds
//! into *calibrated* energy-error predictions
//! ([`predict_energy_error`], [`predict_ledger_energy_error`]).

use qcircuit::{Graph, QaoaParams};
use qtensor::compressed::NoiseHook;
use qtensor::energy::Simulator;
use qtensor::ContractError;
use qtensor::LedgerSummary;

pub use qtensor::ledger::{rss_accumulate, uniform_rss};

/// A single characterization point: injected bound vs. observed error.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisePoint {
    /// Injected pointwise bound ε.
    pub eps: f64,
    /// Number of intermediates perturbed.
    pub tensors: usize,
    /// |E_noisy − E_exact|.
    pub abs_energy_error: f64,
    /// |E_noisy − E_exact| / |E_exact|.
    pub rel_energy_error: f64,
}

/// First-order model: predicted |ΔE| for bound `eps` over `tensors`
/// perturbed intermediates with calibrated constant `c` — `C · ε·√T`, the
/// closed form of the ledger's per-event RSS accumulation.
pub fn predict_energy_error(c: f64, eps: f64, tensors: usize) -> f64 {
    c * uniform_rss(eps, tensors)
}

/// Predicted |ΔE| from a measured error-budget ledger: the calibrated
/// constant times the state-level RSS the ledger actually accumulated
/// (requant-by-requant, chunk-by-chunk), instead of the uniform `ε·√T`
/// assumption. The two agree when every event carries the same bound.
pub fn predict_ledger_energy_error(c: f64, ledger: &LedgerSummary) -> f64 {
    c * ledger.accumulated_rss
}

/// Measures energy error under injected noise of bound `eps` (averaged over
/// `seeds` noise realizations).
pub fn measure_noise_impact(
    graph: &Graph,
    params: &QaoaParams,
    eps: f64,
    seeds: &[u64],
) -> Result<NoisePoint, ContractError> {
    assert!(!seeds.is_empty(), "need at least one noise seed");
    let sim = Simulator::default();
    let exact = sim.energy(graph, params)?.energy;
    let mut sum_err = 0.0;
    let mut tensors = 0usize;
    for &seed in seeds {
        let mut hook = NoiseHook::new(eps, 2, seed);
        let noisy = sim.energy_with_hook(graph, params, &mut hook)?.energy;
        sum_err += (noisy - exact).abs();
        tensors = tensors.max(hook.perturbed);
    }
    let abs = sum_err / seeds.len() as f64;
    Ok(NoisePoint {
        eps,
        tensors,
        abs_energy_error: abs,
        rel_energy_error: abs / exact.abs().max(f64::MIN_POSITIVE),
    })
}

/// Calibrates the model constant `C` on a pilot instance: measures one
/// mid-range ε and solves `C = |ΔE| / (ε sqrt(T))`.
pub fn calibrate(
    graph: &Graph,
    params: &QaoaParams,
    pilot_eps: f64,
    seeds: &[u64],
) -> Result<f64, ContractError> {
    let p = measure_noise_impact(graph, params, pilot_eps, seeds)?;
    Ok(p.abs_energy_error / (p.eps * (p.tensors.max(1) as f64).sqrt()))
}

/// Suggests the largest tensor-level bound expected to keep *relative*
/// energy error below `target_rel` on an instance with exact energy
/// `energy` and roughly `tensors` compressed intermediates, given a
/// calibrated `c`. A 2× safety margin backs off the first-order estimate.
pub fn suggest_bound(c: f64, tensors: usize, energy: f64, target_rel: f64) -> f64 {
    let budget = target_rel * energy.abs();
    budget / (2.0 * c.max(f64::MIN_POSITIVE) * (tensors.max(1) as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> (Graph, QaoaParams) {
        (
            Graph::random_regular(10, 3, 33),
            QaoaParams::new(vec![0.5, 0.8], vec![0.3, 0.55]),
        )
    }

    #[test]
    fn error_grows_with_eps() {
        let (g, p) = instance();
        let seeds = [1, 2, 3];
        let small = measure_noise_impact(&g, &p, 1e-8, &seeds).unwrap();
        let large = measure_noise_impact(&g, &p, 1e-4, &seeds).unwrap();
        assert!(small.abs_energy_error < large.abs_energy_error);
        assert!(large.tensors > 0);
    }

    #[test]
    fn model_tracks_measurement_within_an_order() {
        let (g, p) = instance();
        let seeds = [1, 2, 3, 4];
        let c = calibrate(&g, &p, 1e-5, &seeds).unwrap();
        assert!(c.is_finite() && c > 0.0);
        // Predict at a different eps and compare.
        let probe = measure_noise_impact(&g, &p, 1e-6, &seeds).unwrap();
        let predicted = predict_energy_error(c, probe.eps, probe.tensors);
        let ratio = predicted / probe.abs_energy_error.max(f64::MIN_POSITIVE);
        assert!(
            (0.1..10.0).contains(&ratio),
            "first-order model off by {ratio:.2}x (pred {predicted}, meas {})",
            probe.abs_energy_error
        );
    }

    #[test]
    fn suggested_bound_meets_target() {
        let (g, p) = instance();
        let seeds = [5, 6, 7, 8];
        let c = calibrate(&g, &p, 1e-5, &seeds).unwrap();
        let exact = Simulator::default().energy(&g, &p).unwrap().energy;
        let pilot = measure_noise_impact(&g, &p, 1e-5, &seeds).unwrap();
        let target = 0.01; // 1% relative
        let eb = suggest_bound(c, pilot.tensors, exact, target);
        assert!(eb > 0.0);
        // Average over several noise realizations: the suggestion is a
        // first-order statistical bound, not a worst-case one, so a single
        // unlucky draw can overshoot the target slightly.
        let check = measure_noise_impact(&g, &p, eb, &[11, 12, 13, 14, 15, 16]).unwrap();
        assert!(
            check.rel_energy_error < target,
            "suggested bound {eb:.2e} gave {:.3}% error",
            check.rel_energy_error * 100.0
        );
    }

    #[test]
    fn prediction_monotone_in_inputs() {
        assert!(predict_energy_error(1.0, 1e-3, 100) > predict_energy_error(1.0, 1e-4, 100));
        assert!(predict_energy_error(1.0, 1e-3, 400) > predict_energy_error(1.0, 1e-3, 100));
        assert_eq!(predict_energy_error(2.0, 1e-3, 0), 2.0 * 1e-3);
    }

    #[test]
    fn ledger_prediction_matches_uniform_model_on_uniform_ledgers() {
        use compressors::cuszx::CuSzx;
        use compressors::ErrorBound;
        use qtensor::CompressedState;

        // A real ledger from a lossy run...
        let g = Graph::random_regular(8, 3, 41);
        let circuit = qcircuit::qaoa_circuit(&g, &qcircuit::QaoaParams::fixed_angles_3reg_p1());
        let comp = CuSzx::default();
        let mut cs = CompressedState::run(&circuit, 4, &comp, ErrorBound::Abs(1e-7)).unwrap();
        cs.flush().unwrap();
        let summary = cs.ledger_summary();
        assert!(summary.lossy);

        let c = 2.5;
        let from_ledger = predict_ledger_energy_error(c, &summary);
        assert!(from_ledger > 0.0 && from_ledger.is_finite());
        // With an Abs bound every event carries eps = 1e-7, so the measured
        // RSS equals the uniform closed form over the same event count.
        let events = cs.ledger().lossy_events() as usize;
        let uniform = predict_energy_error(c, 1e-7, events);
        assert!(
            (from_ledger - uniform).abs() / uniform < 1e-9,
            "ledger {from_ledger} vs uniform {uniform}"
        );
    }
}
