//! Pre-processing stages of the compression framework (contribution 1).
//!
//! QTensor tensors have three exploitable regularities that generic
//! compressors miss:
//!
//! 1. **Interleaved components** — complex values are stored `re, im, re,
//!    im, …`; the Lorenzo predictor sees an artificial zig-zag. Splitting
//!    into planes (stage P1, in `framework`) restores smoothness.
//! 2. **Heavy near-zero mass** — amplitudes of improbable paths are tiny
//!    but not exactly zero; quantized they produce noisy ±1 codes. *Zero
//!    collapse* (P2) flushes `|v| ≤ t` to exact zero, spending `t` of the
//!    error budget to turn noise into perfectly predictable runs.
//! 3. **Repeated blocks** — gate structure repeats whole slices. *Block
//!    dedup* (P3) stores each distinct block once plus a reference array.
//!
//! All stages are exact bookkeeping except zero collapse, whose error is
//! budgeted explicitly by the framework (threshold + backend bound ≤ user
//! bound).

use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::bitpack::{pack, unpack};
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::exec::{par_chunks_mut, par_fill_blocks, par_map_blocks};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Values per parallel block for the element-wise stage kernels. Every
/// stage below decomposes by index arithmetic into independent blocks, so
/// the output is bit-identical for any worker count (see `gpu_model::exec`).
const STAGE_BLOCK: usize = 1 << 14;

/// Flushes values with `|v| ≤ threshold` to exact `+0.0` in place.
/// Returns the number of values collapsed.
///
/// Block-parallel: each chunk is flushed independently and the per-chunk
/// counts are summed (an order-independent reduction), so both the buffer
/// and the count match the serial loop exactly.
pub fn zero_collapse(values: &mut [f64], threshold: f64) -> usize {
    let collapsed = AtomicUsize::new(0);
    par_chunks_mut(values, STAGE_BLOCK, |_, chunk| {
        let mut local = 0usize;
        for v in chunk.iter_mut() {
            if v.abs() <= threshold {
                *v = 0.0;
                local += 1;
            }
        }
        collapsed.fetch_add(local, Ordering::Relaxed);
    });
    collapsed.into_inner()
}

/// Fraction of values a collapse at `threshold` would flush (cheap probe
/// used by the framework's routing heuristics). Parallel count over blocks.
pub fn zero_frac(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let counts = par_map_blocks(values, STAGE_BLOCK, |_, chunk| {
        chunk.iter().filter(|v| v.abs() <= threshold).count()
    });
    counts.iter().sum::<usize>() as f64 / values.len() as f64
}

/// Splits interleaved `re, im, re, im, …` data into two planes (stage P1).
/// Both gathers run block-parallel; every output element is an independent
/// copy, so the planes are identical for any worker count.
///
/// # Panics
/// Panics when the length is odd.
pub fn deinterleave(data: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut re = Vec::new();
    let mut im = Vec::new();
    deinterleave_into(data, &mut re, &mut im);
    (re, im)
}

/// [`deinterleave`] into caller-provided buffers, which are resized to
/// `data.len() / 2` (reusing their capacity) and fully overwritten.
///
/// # Panics
/// Panics when the length is odd.
pub fn deinterleave_into(data: &[f64], re: &mut Vec<f64>, im: &mut Vec<f64>) {
    assert!(
        data.len().is_multiple_of(2),
        "interleaved input must have even length"
    );
    let half = data.len() / 2;
    re.clear();
    re.resize(half, 0.0);
    im.clear();
    im.resize(half, 0.0);
    par_fill_blocks(re, STAGE_BLOCK, |_, range, chunk| {
        for (j, slot) in range.zip(chunk.iter_mut()) {
            *slot = data[2 * j];
        }
    });
    par_fill_blocks(im, STAGE_BLOCK, |_, range, chunk| {
        for (j, slot) in range.zip(chunk.iter_mut()) {
            *slot = data[2 * j + 1];
        }
    });
}

/// Re-interleaves two planes back into `re, im, re, im, …` order (the
/// inverse of [`deinterleave`]), block-parallel over the output.
///
/// # Panics
/// Panics when the planes differ in length.
pub fn interleave(re: &[f64], im: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    interleave_into(re, im, &mut out);
    out
}

/// [`interleave`] into a caller-provided buffer, which is resized to
/// `2 * re.len()` (reusing its capacity) and fully overwritten.
///
/// # Panics
/// Panics when the planes differ in length.
pub fn interleave_into(re: &[f64], im: &[f64], out: &mut Vec<f64>) {
    assert_eq!(re.len(), im.len(), "planes must have equal length");
    out.clear();
    out.resize(re.len() * 2, 0.0);
    par_fill_blocks(out, STAGE_BLOCK, |_, range, chunk| {
        for (j, slot) in range.zip(chunk.iter_mut()) {
            let plane = if j % 2 == 0 { re } else { im };
            *slot = plane[j / 2];
        }
    });
}

/// Result of block deduplication.
#[derive(Debug, Clone, PartialEq)]
pub struct Deduped<'a> {
    /// Concatenation of the distinct blocks (in first-occurrence order)
    /// followed by the partial tail (`n % block_size` values). When the
    /// input has no duplicate blocks this borrows the input verbatim —
    /// first-occurrence order *is* input order — so the all-unique probe
    /// (the common case for incompressible planes) copies nothing.
    pub unique: std::borrow::Cow<'a, [f64]>,
    /// Per full block, the index of its distinct block.
    pub refs: Vec<u32>,
    /// Block size used.
    pub block_size: usize,
    /// Original length.
    pub n: usize,
    /// Number of distinct blocks.
    pub n_unique: usize,
}

impl Deduped<'_> {
    /// Fraction of full blocks that were duplicates (0 for < 2 blocks).
    pub fn dup_frac(&self) -> f64 {
        if self.refs.len() < 2 {
            return 0.0;
        }
        (self.refs.len() - self.n_unique) as f64 / self.refs.len() as f64
    }
}

/// 64-bit FNV-1a over the bit patterns of a block (the parallel hash pass
/// of [`dedup_blocks`]).
fn block_fingerprint(chunk: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in chunk {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// True when two blocks are bit-identical (NaN payloads and zero signs
/// distinguish, matching the dedup contract).
fn blocks_bit_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Splits `values` into `block_size` chunks and deduplicates bit-identical
/// blocks. The trailing partial block is appended verbatim to `unique`.
///
/// Two passes: a block-parallel fingerprint pass (one 64-bit FNV-1a hash
/// per full block), then a serial table walk in first-occurrence order.
/// Fingerprints only route blocks into buckets — equality is always decided
/// by bit-exact comparison, so a hash collision costs a compare, never a
/// wrong merge, and the result is identical to the single-pass serial walk.
pub fn dedup_blocks(values: &[f64], block_size: usize) -> Deduped<'_> {
    assert!(block_size > 0, "block size must be positive");
    let n = values.len();
    let n_blocks = n / block_size;
    let full = &values[..n_blocks * block_size];
    let fingerprints: Vec<u64> =
        par_map_blocks(full, block_size, |_, chunk| block_fingerprint(chunk));
    let mut table: std::collections::HashMap<u64, Vec<u32>> =
        std::collections::HashMap::with_capacity(n_blocks);
    // Block index of each distinct block's first occurrence — the table
    // walk range-indexes the original slice instead of eagerly copying
    // unique blocks, so the all-unique case materializes nothing.
    let mut firsts: Vec<u32> = Vec::new();
    let mut refs: Vec<u32> = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let chunk = &values[b * block_size..(b + 1) * block_size];
        let bucket = table.entry(fingerprints[b]).or_default();
        let id = match bucket.iter().copied().find(|&id| {
            let lo = firsts[id as usize] as usize * block_size;
            blocks_bit_eq(&values[lo..lo + block_size], chunk)
        }) {
            Some(id) => id,
            None => {
                let id = firsts.len() as u32;
                firsts.push(b as u32);
                bucket.push(id);
                id
            }
        };
        refs.push(id);
    }
    let n_unique = firsts.len();
    let unique = if n_unique == n_blocks {
        // No duplicates: distinct blocks in first-occurrence order plus the
        // verbatim tail is exactly the input.
        std::borrow::Cow::Borrowed(values)
    } else {
        let tail = &values[n_blocks * block_size..];
        let mut u: Vec<f64> = Vec::with_capacity(n_unique * block_size + tail.len());
        for &fb in &firsts {
            let lo = fb as usize * block_size;
            u.extend_from_slice(&values[lo..lo + block_size]);
        }
        u.extend_from_slice(tail);
        std::borrow::Cow::Owned(u)
    };
    Deduped {
        unique,
        refs,
        block_size,
        n,
        n_unique,
    }
}

/// Reassembles the original buffer from (a reconstruction of) `unique` and
/// the reference array. `unique` may be a lossy reconstruction — duplicates
/// stay bit-identical to each other because they share one stored block.
pub fn reassemble_blocks(
    unique: &[f64],
    refs: &[u32],
    block_size: usize,
    n: usize,
) -> Result<Vec<f64>, CodecError> {
    let mut out = Vec::new();
    reassemble_blocks_into(unique, refs, block_size, n, &mut out)?;
    Ok(out)
}

/// [`reassemble_blocks`] into a caller-provided buffer, which is cleared
/// first (reusing its capacity). On error the buffer contents are
/// unspecified but valid.
pub fn reassemble_blocks_into(
    unique: &[f64],
    refs: &[u32],
    block_size: usize,
    n: usize,
    out: &mut Vec<f64>,
) -> Result<(), CodecError> {
    let n_blocks = n / block_size;
    if refs.len() != n_blocks {
        return Err(CodecError::Corrupt("dedup reference count mismatch"));
    }
    let tail_len = n - n_blocks * block_size;
    if unique.len() < tail_len {
        return Err(CodecError::Corrupt("dedup unique length mismatch"));
    }
    let unique_blocks = (unique.len() - tail_len) / block_size;
    if unique_blocks * block_size + tail_len != unique.len() {
        return Err(CodecError::Corrupt("dedup unique length mismatch"));
    }
    out.clear();
    out.reserve(n);
    for &r in refs {
        let r = r as usize;
        if r >= unique_blocks {
            return Err(CodecError::Corrupt("dedup reference out of range"));
        }
        out.extend_from_slice(&unique[r * block_size..(r + 1) * block_size]);
    }
    out.extend_from_slice(&unique[unique.len() - tail_len..]);
    Ok(())
}

/// Serializes a dedup reference array, bit-packed at the width `n_unique`
/// requires.
pub fn write_refs(refs: &[u32], n_unique: usize, out: &mut Vec<u8>) {
    write_uvarint(out, refs.len() as u64);
    let width = if n_unique <= 1 {
        0
    } else {
        64 - (n_unique as u64 - 1).leading_zeros()
    };
    out.push(width as u8);
    let mut w = BitWriter::with_capacity(refs.len() * width as usize / 8 + 8);
    let wide: Vec<u64> = refs.iter().map(|&r| r as u64).collect();
    pack(&wide, width, &mut w);
    let packed = w.finish();
    write_uvarint(out, packed.len() as u64);
    out.extend_from_slice(&packed);
}

/// Reads a reference array written by [`write_refs`]. `max_refs` is the
/// largest count the caller considers plausible (the plane's block count) —
/// a forged header may not reserve past it.
pub fn read_refs(data: &[u8], pos: &mut usize, max_refs: usize) -> Result<Vec<u32>, CodecError> {
    let count = read_uvarint(data, pos)? as usize;
    if count > max_refs {
        return Err(CodecError::Corrupt("absurd dedup reference count"));
    }
    let width = *data.get(*pos).ok_or(CodecError::UnexpectedEof)? as u32;
    *pos += 1;
    if width > 32 {
        return Err(CodecError::Corrupt("dedup reference width out of range"));
    }
    let packed_len = read_uvarint(data, pos)? as usize;
    if data.len() < *pos + packed_len {
        return Err(CodecError::UnexpectedEof);
    }
    // Width > 0 refs cost `width` bits each — the packed length bounds the
    // honest count before `unpack` reserves anything.
    if width > 0 && count > packed_len.saturating_mul(8) / width as usize {
        return Err(CodecError::Corrupt("dedup reference count exceeds payload"));
    }
    let mut r = BitReader::new(&data[*pos..*pos + packed_len]);
    *pos += packed_len;
    let wide = unpack(&mut r, width, count)?;
    Ok(wide.into_iter().map(|v| v as u32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_flushes_small_values() {
        let mut v = vec![0.5, 1e-9, -1e-9, -0.5, 0.0];
        let c = zero_collapse(&mut v, 1e-6);
        assert_eq!(c, 3);
        assert_eq!(v, vec![0.5, 0.0, 0.0, -0.5, 0.0]);
        // collapsed negatives become +0.0 bit patterns
        assert_eq!(v[2].to_bits(), 0);
    }

    #[test]
    fn collapse_threshold_zero_only_flushes_zeros() {
        let mut v = vec![1e-300, 0.0, -0.0];
        let c = zero_collapse(&mut v, 0.0);
        assert_eq!(c, 2); // 0.0 and -0.0
        assert_eq!(v[0], 1e-300);
    }

    #[test]
    fn zero_frac_probe() {
        assert_eq!(zero_frac(&[], 1.0), 0.0);
        assert_eq!(zero_frac(&[0.0, 1.0, 0.5, 2.0], 0.5), 0.5);
    }

    #[test]
    fn deinterleave_interleave_roundtrip() {
        // Cover both the serial (< STAGE_BLOCK) and multi-block regimes.
        for n_complex in [0usize, 3, STAGE_BLOCK + 17] {
            let data: Vec<f64> = (0..n_complex * 2).map(|i| i as f64 * 0.25 - 7.0).collect();
            let (re, im) = deinterleave(&data);
            assert_eq!(re.len(), n_complex);
            for i in 0..n_complex {
                assert_eq!(re[i], data[2 * i]);
                assert_eq!(im[i], data[2 * i + 1]);
            }
            assert_eq!(interleave(&re, &im), data);
        }
    }

    #[test]
    fn collapse_large_buffer_matches_serial_count() {
        let mut v: Vec<f64> = (0..3 * STAGE_BLOCK + 11)
            .map(|i| if i % 3 == 0 { 1e-9 } else { 0.5 })
            .collect();
        let want = v.iter().filter(|x| x.abs() <= 1e-6).count();
        let frac = zero_frac(&v, 1e-6);
        assert!((frac - want as f64 / v.len() as f64).abs() < 1e-15);
        assert_eq!(zero_collapse(&mut v, 1e-6), want);
        assert!(v.iter().all(|x| *x == 0.5 || x.to_bits() == 0));
    }

    #[test]
    fn dedup_finds_duplicates() {
        // blocks of 2: [1,2] [3,4] [1,2] + tail [9]
        let v = vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 9.0];
        let d = dedup_blocks(&v, 2);
        assert_eq!(d.n_unique, 2);
        assert_eq!(d.refs, vec![0, 1, 0]);
        assert_eq!(d.unique, vec![1.0, 2.0, 3.0, 4.0, 9.0]);
        assert!((d.dup_frac() - 1.0 / 3.0).abs() < 1e-12);
        let back = reassemble_blocks(&d.unique, &d.refs, 2, v.len()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn dedup_distinguishes_nan_payloads_and_zero_signs() {
        let nan1 = f64::from_bits(0x7FF8_0000_0000_0001);
        let nan2 = f64::from_bits(0x7FF8_0000_0000_0002);
        let v = vec![nan1, nan2, 0.0, -0.0];
        let d = dedup_blocks(&v, 2);
        assert_eq!(d.n_unique, 2, "bit-distinct blocks must not merge");
        let back = reassemble_blocks(&d.unique, &d.refs, 2, 4).unwrap();
        for (a, b) in v.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dedup_all_same_block() {
        let v = vec![7.0; 1024];
        let d = dedup_blocks(&v, 64);
        assert_eq!(d.n_unique, 1);
        assert_eq!(d.unique.len(), 64);
        assert!((d.dup_frac() - 15.0 / 16.0).abs() < 1e-12);
        assert_eq!(reassemble_blocks(&d.unique, &d.refs, 64, 1024).unwrap(), v);
    }

    #[test]
    fn dedup_short_input_is_all_tail() {
        let v = vec![1.0, 2.0, 3.0];
        let d = dedup_blocks(&v, 8);
        assert_eq!(d.refs.len(), 0);
        assert_eq!(d.unique, v);
        assert_eq!(reassemble_blocks(&d.unique, &d.refs, 8, 3).unwrap(), v);
    }

    #[test]
    fn refs_roundtrip() {
        for refs in [
            vec![],
            vec![0u32],
            vec![0, 1, 2, 1, 0, 2, 2],
            (0..1000u32).collect(),
        ] {
            let n_unique = refs.iter().max().map_or(0, |&m| m as usize + 1);
            let mut buf = Vec::new();
            write_refs(&refs, n_unique, &mut buf);
            let mut pos = 0;
            assert_eq!(read_refs(&buf, &mut pos, 1 << 16).unwrap(), refs);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn refs_single_unique_block_is_width_zero() {
        let refs = vec![0u32; 4096];
        let mut buf = Vec::new();
        write_refs(&refs, 1, &mut buf);
        assert!(
            buf.len() < 16,
            "4096 identical refs took {} bytes",
            buf.len()
        );
        let mut pos = 0;
        assert_eq!(read_refs(&buf, &mut pos, 1 << 16).unwrap(), refs);
    }

    #[test]
    fn corrupt_refs_error() {
        let mut buf = Vec::new();
        write_refs(&[0, 1, 2], 3, &mut buf);
        let mut pos = 0;
        assert!(read_refs(&buf[..buf.len() - 1], &mut pos, 1 << 16).is_err());
    }

    #[test]
    fn reassemble_rejects_bad_refs() {
        assert!(reassemble_blocks(&[1.0, 2.0], &[5], 2, 2).is_err());
        assert!(reassemble_blocks(&[1.0, 2.0], &[0, 0], 2, 2).is_err());
    }

    #[test]
    fn dedup_all_unique_borrows_input() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = dedup_blocks(&v, 8);
        assert_eq!(d.n_unique, 12);
        assert!(
            matches!(d.unique, std::borrow::Cow::Borrowed(_)),
            "all-unique input must not be copied"
        );
        assert_eq!(&*d.unique, &v[..]);
        let back = reassemble_blocks(&d.unique, &d.refs, 8, v.len()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn dedup_with_duplicates_owns_unique() {
        let v = vec![1.0, 2.0, 1.0, 2.0, 3.0, 4.0];
        let d = dedup_blocks(&v, 2);
        assert!(matches!(d.unique, std::borrow::Cow::Owned(_)));
        assert_eq!(d.refs, vec![0, 0, 1]);
        assert_eq!(d.unique, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn into_variants_match_allocating_counterparts() {
        let data: Vec<f64> = (0..2 * (STAGE_BLOCK + 5)).map(|i| i as f64 * 0.1).collect();
        let (re, im) = deinterleave(&data);
        // Dirty, differently-sized target buffers must not affect results.
        let mut re2 = vec![9.9; 3];
        let mut im2 = Vec::with_capacity(1 << 16);
        deinterleave_into(&data, &mut re2, &mut im2);
        assert_eq!(re, re2);
        assert_eq!(im, im2);

        let merged = interleave(&re, &im);
        let mut merged2 = vec![1.0; 5];
        interleave_into(&re2, &im2, &mut merged2);
        assert_eq!(merged, merged2);
        assert_eq!(merged, data);

        let d = dedup_blocks(&data, 64);
        let out = reassemble_blocks(&d.unique, &d.refs, 64, data.len()).unwrap();
        let mut out2 = vec![7.0; 2];
        reassemble_blocks_into(&d.unique, &d.refs, 64, data.len(), &mut out2).unwrap();
        assert_eq!(out, out2);
    }
}
