//! # QCF — an error-bounded compression framework for quantum circuit simulations
//!
//! Rust reproduction of *GPU-Accelerated Error-Bounded Compression Framework
//! for Quantum Circuit Simulations* (Shah, Yu, Di, Lykov, Alexeev, Becchi,
//! Cappello — IPDPS 2023). This facade crate re-exports the workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`tensornet`] | complex tensors with named indices, einsum |
//! | [`qcircuit`]  | gates, circuits, QAOA MaxCut workloads |
//! | [`qtensor`]   | tensor-network simulator + compressed contraction |
//! | [`gpu_model`] | simulated A100: kernels, streams, memory accounting |
//! | [`codec_kit`] | bit I/O, Huffman, LZ77, RLE, bit-packing |
//! | [`compressors`] | the nine evaluated compressors |
//! | [`qcf_core`]  | **the paper's contribution**: pipeline, modes, fidelity |
//! | [`qcf_telemetry`] | spans, metrics registry, Chrome-trace export |
//!
//! ## Quickstart
//!
//! ```
//! use qcf::prelude::*;
//!
//! // A QAOA MaxCut instance...
//! let graph = Graph::random_regular(10, 3, 7);
//! let params = QaoaParams::fixed_angles_3reg_p1();
//!
//! // ...simulated exactly...
//! let exact = Simulator::default().energy(&graph, &params).unwrap().energy;
//!
//! // ...and with every intermediate tensor compressed at 1e-4.
//! let framework = QcfCompressor::ratio();
//! let mut hook = CompressingHook::new(&framework, ErrorBound::Abs(1e-4), 2);
//! let compressed = Simulator::default()
//!     .energy_with_hook(&graph, &params, &mut hook)
//!     .unwrap()
//!     .energy;
//!
//! assert!((exact - compressed).abs() / exact < 0.05);
//! ```

pub use codec_kit;
pub use compressors;
pub use gpu_model;
pub use qcf_core;
pub use qcf_telemetry;
pub use qcircuit;
pub use qtensor;
pub use tensornet;

/// The names most programs need.
pub mod prelude {
    pub use compressors::{
        all_compressors, by_name, round_trip, Compressor, CompressorKind, ErrorBound,
    };
    pub use gpu_model::{DeviceSpec, Stream};
    pub use qcf_core::{Mode, QcfCompressor, StageToggles};
    pub use qcircuit::{qaoa_circuit, Circuit, Gate, Graph, QaoaParams};
    pub use qtensor::compressed::{CompressingHook, NoiseHook};
    pub use qtensor::{Simulator, StateVector, TraceHook};
    pub use tensornet::{Complex64, Tensor};
}
